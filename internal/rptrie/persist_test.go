package rptrie

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
)

func TestPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	ds := randomDataset(rng, 120)
	pivots := pivot.Select(ds, 3, 5, dist.Hausdorff, p, 7)
	for _, cfg := range []Config{
		{Measure: dist.Hausdorff, Params: p, Grid: g, Pivots: pivots, Optimize: true},
		{Measure: dist.Frechet, Params: p, Grid: g, Pivots: pivots},
		{Measure: dist.LCSS, Params: p, Grid: g},
	} {
		orig, err := Build(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadTrie(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.NumNodes() != orig.NumNodes() || back.NumLeaves() != orig.NumLeaves() ||
			back.MaxDepth() != orig.MaxDepth() || back.Len() != orig.Len() {
			t.Fatalf("%v: stats differ after round trip", cfg.Measure)
		}
		// Restored trie satisfies every structural invariant.
		validate(t, back)
		// And answers identically, with identical work.
		for trial := 0; trial < 5; trial++ {
			q := randomDataset(rng, 1)[0]
			got, gotStats := back.SearchWithStats(q.Points, 7)
			want, wantStats := orig.SearchWithStats(q.Points, 7)
			if len(got) != len(want) {
				t.Fatalf("%v: result sizes differ", cfg.Measure)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v: result %d differs: %+v vs %+v", cfg.Measure, i, got[i], want[i])
				}
			}
			if gotStats != wantStats {
				t.Fatalf("%v: stats differ: %+v vs %+v", cfg.Measure, gotStats, wantStats)
			}
		}
	}
}

func TestPersistEmptyTrie(t *testing.T) {
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 3)
	orig, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrie(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res := back.Search([]geo.Point{{X: 1, Y: 1}}, 3); res != nil {
		t.Errorf("restored empty trie returned %v", res)
	}
}

// shiftIDs clones trs with ids rebased at base, for inserts that must
// not collide with an indexed dataset's 0..n-1 ids.
func shiftIDs(trs []*geo.Trajectory, base int) []*geo.Trajectory {
	out := make([]*geo.Trajectory, len(trs))
	for i, tr := range trs {
		out[i] = &geo.Trajectory{ID: base + i, Points: tr.Points}
	}
	return out
}

// TestPersistPreservesGeneration: a saved index restores at the
// source's generation with any pending delta folded in — the contract
// cluster failover relies on to keep restored replicas aligned with
// their donor.
func TestPersistPreservesGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Measure: dist.Hausdorff, Params: dist.Params{Epsilon: 0.5}, Grid: g}
	ds := randomDataset(rng, 60)
	trie, err := Build(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := trie.Insert(shiftIDs(randomDataset(rng, 5), 10_000)...); err != nil {
		t.Fatal(err)
	}
	trie.Delete(ds[0].ID)
	gen := trie.Generation()
	if gen != 2 {
		t.Fatalf("generation %d after two mutations, want 2", gen)
	}

	var buf bytes.Buffer
	if err := trie.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrie(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Generation() != gen {
		t.Errorf("restored trie generation %d, want %d", back.Generation(), gen)
	}
	if back.DeltaLen() != 0 {
		t.Errorf("restored trie delta %d, want 0 (folded)", back.DeltaLen())
	}
	if back.Len() != trie.Len() {
		t.Errorf("restored Len %d, want %d", back.Len(), trie.Len())
	}

	suc, err := Compress(trie)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := suc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sback, err := ReadSuccinct(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sback.Generation() != suc.Generation() {
		t.Errorf("restored succinct generation %d, want %d", sback.Generation(), suc.Generation())
	}
}

// TestSuccinctPersistRoundTrip: the succinct layout round-trips
// through Save/ReadSuccinct and answers queries identically, with
// identical traversal work, including with a pending delta (folded
// into the saved image).
func TestSuccinctPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	ds := randomDataset(rng, 140)
	pivots := pivot.Select(ds, 3, 5, dist.Hausdorff, p, 7)
	for _, cfg := range []Config{
		{Measure: dist.Hausdorff, Params: p, Grid: g, Pivots: pivots, Optimize: true},
		{Measure: dist.DTW, Params: p, Grid: g},
		{Measure: dist.EDR, Params: p, Grid: g},
	} {
		trie, err := Build(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := Compress(trie)
		if err != nil {
			t.Fatal(err)
		}
		// Stage a pending delta on the original: Save must fold it.
		if err := orig.Insert(shiftIDs(randomDataset(rng, 6), 10_000)...); err != nil {
			t.Fatal(err)
		}
		orig.Delete(ds[3].ID, ds[7].ID)

		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadSuccinct(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.DeltaLen() != 0 {
			t.Fatalf("%v: restored delta %d, want folded", cfg.Measure, back.DeltaLen())
		}
		// Fold the original's delta too: Save compacted its image, so
		// the restored core matches the original's *compacted* core —
		// including traversal statistics, which an overlay would skew.
		if err := orig.Compact(); err != nil {
			t.Fatal(err)
		}
		if back.Len() != orig.Len() {
			t.Fatalf("%v: Len %d want %d", cfg.Measure, back.Len(), orig.Len())
		}
		if back.NumNodes() == 0 || back.NumLeaves() == 0 {
			t.Fatalf("%v: degenerate restored core", cfg.Measure)
		}
		for trial := 0; trial < 6; trial++ {
			q := randomDataset(rng, 1)[0]
			got, gotStats := back.SearchWithStats(q.Points, 9)
			want, wantStats := orig.SearchWithStats(q.Points, 9)
			if len(got) != len(want) {
				t.Fatalf("%v: result sizes differ (%d vs %d)", cfg.Measure, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v: result %d differs: %+v vs %+v", cfg.Measure, i, got[i], want[i])
				}
			}
			if gotStats != wantStats {
				t.Fatalf("%v: stats differ: %+v vs %+v", cfg.Measure, gotStats, wantStats)
			}
		}
		// The restored index stays live: mutations and compaction work.
		if err := back.Insert(shiftIDs(randomDataset(rng, 3), 20_000)...); err != nil {
			t.Fatal(err)
		}
		if err := back.Compact(); err != nil {
			t.Fatal(err)
		}
	}
}

// corruptSuccinct encodes a valid succinct image, hands the decoded
// wire struct to mutate, and re-encodes it.
func corruptSuccinct(t *testing.T, mutate func(*wireSuccinct)) *bytes.Buffer {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	trie, err := Build(Config{Measure: dist.Hausdorff, Params: dist.Params{Epsilon: 0.5}, Grid: g}, randomDataset(rng, 80))
	if err != nil {
		t.Fatal(err)
	}
	suc, err := Compress(trie)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := suc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := readWireVersion(&buf); err != nil {
		t.Fatal(err)
	}
	var ws wireSuccinct
	if err := gob.NewDecoder(&buf).Decode(&ws); err != nil {
		t.Fatal(err)
	}
	mutate(&ws)
	var out bytes.Buffer
	if err := writeWireVersion(&out); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&out).Encode(&ws); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestReadSuccinctErrors: corrupted inputs fail the read with a
// diagnostic instead of producing an index that breaks at query time.
func TestReadSuccinctErrors(t *testing.T) {
	if _, err := ReadSuccinct(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := ReadSuccinct(bytes.NewReader([]byte("garbage bytes"))); err == nil {
		t.Error("garbage should fail")
	}
	cases := []struct {
		name   string
		mutate func(*wireSuccinct)
	}{
		{"bad magic", func(ws *wireSuccinct) { ws.Magic = "XPSUCC1" }},
		{"unknown leaf trajectory", func(ws *wireSuccinct) { ws.Leaves[0].Tids = []int32{987654} }},
		{"unsorted alphabet", func(ws *wireSuccinct) {
			if len(ws.Alphabet) < 2 {
				t.Skip("alphabet too small for this corruption")
			}
			ws.Alphabet[0], ws.Alphabet[1] = ws.Alphabet[1], ws.Alphabet[0]
		}},
		{"meta length mismatch", func(ws *wireSuccinct) { ws.Levels[0].Meta = ws.Levels[0].Meta[:len(ws.Levels[0].Meta)-1] }},
		{"node count mismatch", func(ws *wireSuccinct) { ws.Levels[0].N++ }},
		{"sparse offset out of range", func(ws *wireSuccinct) {
			if len(ws.Sparse) == 0 {
				t.Skip("no sparse tier in this build")
			}
			ws.Sparse[len(ws.Sparse)-1] = len(ws.Blob) + 100
		}},
		{"descending sparse offsets", func(ws *wireSuccinct) {
			if len(ws.Sparse) < 2 {
				t.Skip("sparse tier too small for this corruption")
			}
			ws.Sparse[0], ws.Sparse[1] = ws.Sparse[1], ws.Sparse[0]
		}},
		{"leaf base out of range", func(ws *wireSuccinct) { ws.Levels[len(ws.Levels)-1].LeafBase = len(ws.Leaves) + 7 }},
		{"empty trajectory", func(ws *wireSuccinct) { ws.Trajs[0] = &geo.Trajectory{ID: 1} }},
		{"bad grid", func(ws *wireSuccinct) { ws.Config.GridBits = -3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadSuccinct(corruptSuccinct(t, tc.mutate)); err == nil {
				t.Fatalf("%s: corrupted stream decoded successfully", tc.name)
			} else {
				t.Logf("%s: %v", tc.name, err)
			}
		})
	}
}

func TestReadTrieErrors(t *testing.T) {
	if _, err := ReadTrie(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := ReadTrie(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage should fail")
	}
	// Valid gob, wrong magic.
	var buf bytes.Buffer
	ds, _, g := paperDataset()
	orig, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the magic string in place.
	idx := bytes.Index(raw, []byte("RPTRIE1"))
	if idx < 0 {
		t.Fatal("magic not found in encoding")
	}
	raw[idx] = 'X'
	if _, err := ReadTrie(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted magic should fail")
	}
}
