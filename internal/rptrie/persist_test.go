package rptrie

import (
	"bytes"
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
)

func TestPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	ds := randomDataset(rng, 120)
	pivots := pivot.Select(ds, 3, 5, dist.Hausdorff, p, 7)
	for _, cfg := range []Config{
		{Measure: dist.Hausdorff, Params: p, Grid: g, Pivots: pivots, Optimize: true},
		{Measure: dist.Frechet, Params: p, Grid: g, Pivots: pivots},
		{Measure: dist.LCSS, Params: p, Grid: g},
	} {
		orig, err := Build(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadTrie(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.NumNodes() != orig.NumNodes() || back.NumLeaves() != orig.NumLeaves() ||
			back.MaxDepth() != orig.MaxDepth() || back.Len() != orig.Len() {
			t.Fatalf("%v: stats differ after round trip", cfg.Measure)
		}
		// Restored trie satisfies every structural invariant.
		validate(t, back)
		// And answers identically, with identical work.
		for trial := 0; trial < 5; trial++ {
			q := randomDataset(rng, 1)[0]
			got, gotStats := back.SearchWithStats(q.Points, 7)
			want, wantStats := orig.SearchWithStats(q.Points, 7)
			if len(got) != len(want) {
				t.Fatalf("%v: result sizes differ", cfg.Measure)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v: result %d differs: %+v vs %+v", cfg.Measure, i, got[i], want[i])
				}
			}
			if gotStats != wantStats {
				t.Fatalf("%v: stats differ: %+v vs %+v", cfg.Measure, gotStats, wantStats)
			}
		}
	}
}

func TestPersistEmptyTrie(t *testing.T) {
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 3)
	orig, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrie(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res := back.Search([]geo.Point{{X: 1, Y: 1}}, 3); res != nil {
		t.Errorf("restored empty trie returned %v", res)
	}
}

func TestReadTrieErrors(t *testing.T) {
	if _, err := ReadTrie(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := ReadTrie(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage should fail")
	}
	// Valid gob, wrong magic.
	var buf bytes.Buffer
	ds, _, g := paperDataset()
	orig, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the magic string in place.
	idx := bytes.Index(raw, []byte("RPTRIE1"))
	if idx < 0 {
		t.Fatal("magic not found in encoding")
	}
	raw[idx] = 'X'
	if _, err := ReadTrie(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted magic should fail")
	}
}
