package rptrie

import (
	"errors"
	"fmt"
	mathbits "math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repose/internal/bits"
	"repose/internal/geo"
)

// Compressed is the trit-array (tSTAT) layout after Kanda & Fujii
// ("Succinct Trit-array Trie for Scalable Trajectory Similarity
// Search", arXiv 2005.10917): the whole trie is flattened into BFS
// node order and every per-node attribute becomes one entry of a
// packed, rank/select-addressable array. Unlike Succinct's two-tier
// scheme there is no pointer- or byte-serialized remainder — every
// level is succinct, so the structural core is a handful of flat
// arrays that stay cache-resident during search; Snapshot/Restore
// images omit it entirely and rebuild it on load (persist_tstat.go).
//
// Encoding, per BFS node v (root is node 0):
//
//   - A trit distinguishing the three node states, stored as two
//     disjoint bit planes: hi[v]=1 ⇔ v is a pure leaf (payload, no
//     children); lo[v]=1 ⇔ v is terminal with children (the paper's
//     '$'-terminated internal node). (lo,hi)=(0,0) is a plain
//     internal node; (1,1) is unused.
//   - Child navigation via a degree-unary LOUDS bitvector: every
//     non-pure-leaf node appends 0^degree 1 in BFS order. Children of
//     the g-th such node occupy the zeros of its group, and because
//     every non-root node is somebody's child exactly once, the i-th
//     zero overall is node i+1 — child ids are consecutive and
//     recovered with two Select1 calls and no stored pointers.
//   - The incoming edge label of node v (v ≥ 1), as a fixed-width
//     index into the sorted distinct z-value alphabet.
//   - Exact minLen/maxLen/maxDepthBelow in bit-packed arrays whose
//     widths are the smallest that fit the maxima — LBo sees the same
//     values the pointer layout stores.
//   - Pivot ranges quantized to 16 buckets of the per-pivot global
//     range (min rounded down into the low nibble, max rounded up
//     into the high nibble) with a 16-entry float64 decode LUT per
//     pivot: admissible by construction, 1 byte per pivot instead of
//     Succinct's 8.
//
// Terminal payloads live in flat arrays indexed by terminal rank
// (rank1(lo,v)+rank1(hi,v)); member ids are one shared []int32 sliced
// by packed offsets, and leaf Dmax is an up-rounded float32.
//
// Like Trie and Succinct, a Compressed is a stable handle over an
// atomically swapped immutable state: Insert/Delete/Upsert/Compact
// ride the shared delta overlay (dynamic.go) with snapshot isolation,
// and Compact rebuilds through the pointer layout and re-encodes.
type Compressed struct {
	cfg  Config
	mu   sync.Mutex // serializes writers
	cur  atomic.Pointer[cmpState]
	pool scratchPool
}

// cmpState is one immutable generation of the compressed index.
type cmpState struct {
	gen   uint64
	core  *cmpCore
	trajs map[int32]*geo.Trajectory
	delta *delta // pending mutations; nil once compacted
}

// live mirrors trieState.live for the compressed layout.
func (st *cmpState) live() int {
	n := len(st.trajs)
	if st.delta != nil {
		n += len(st.delta.adds) - len(st.delta.dels)
	}
	return n
}

// withDelta derives the next generation with nd as overlay.
func (st *cmpState) withDelta(nd *delta) *cmpState {
	ns := *st
	ns.delta = nd
	ns.gen = st.gen + 1
	return &ns
}

// cmpCore is the compressed structural core shared by every
// generation until a compaction replaces it.
type cmpCore struct {
	alphabet packedInts // sorted distinct edge z-values, bit-packed
	alphaN   int        // alphabet cardinality
	lo, hi   *bits.Set  // trit planes over BFS node ids
	louds    *bits.Set  // 0^degree 1 per non-pure-leaf node, BFS order
	labels   packedInts
	np       int

	// Exact per-node subtree metadata (LBo inputs).
	minLen, maxLen, maxDepth packedInts

	// Quantized pivot ranges: the low nibble of hrq[v*np+j] holds the
	// bucket index of node v's pivot-j min, the high nibble its max;
	// hrLUT[j*16+b] decodes bucket b of pivot j.
	hrq   []uint8
	hrLUT []float64

	// Terminal payloads in BFS-terminal order.
	leafTids               []int32
	leafOff                []int32 // leaf l's members: leafTids[leafOff[l]:leafOff[l+1]]
	leafDmax               []float32
	leafMinLen, leafMaxLen packedInts

	numNodes int // excluding the root, matching trieState.numNodes
	numLeafs int
}

// hrBuckets is the number of quantization buckets per pivot bound. A
// bucket index fits a nibble, so each (node, pivot) range costs one
// byte. Coarser buckets only widen the decoded interval — LBp stays
// admissible and results bit-identical; the quantization error is
// bounded by 1/15 of the pivot's root range per bound.
const hrBuckets = 16

// packedInts is a fixed-width bit-packed array of non-negative ints.
type packedInts struct {
	w    uint8
	data []uint64
}

// packInts packs vals at the smallest width that fits the maximum.
func packInts(vals []uint64) packedInts {
	var max uint64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	w := uint8(mathbits.Len64(max))
	if w == 0 {
		return packedInts{}
	}
	p := packedInts{w: w, data: make([]uint64, (len(vals)*int(w)+63)/64)}
	for i, v := range vals {
		bo := i * int(w)
		wi, sh := bo/64, uint(bo%64)
		p.data[wi] |= v << sh
		if sh+uint(w) > 64 {
			p.data[wi+1] = v >> (64 - sh)
		}
	}
	return p
}

// get returns element i. Constant time: at most two word reads.
func (p packedInts) get(i int) uint64 {
	if p.w == 0 {
		return 0
	}
	bo := i * int(p.w)
	wi, sh := bo/64, uint(bo%64)
	v := p.data[wi] >> sh
	if sh+uint(p.w) > 64 {
		v |= p.data[wi+1] << (64 - sh)
	}
	return v & (1<<p.w - 1)
}

func (p packedInts) sizeBytes() int { return len(p.data)*8 + 32 }

// CompressTST converts a built pointer trie into the trit-array
// layout. The result answers queries identically to the source trie;
// a pending delta is folded in first, so the compressed core always
// starts fully compacted.
func CompressTST(t *Trie) (*Compressed, error) {
	if t == nil {
		return nil, errors.New("rptrie: nil trie")
	}
	st := t.state()
	if !st.delta.empty() {
		var err error
		if st, err = compactedState(t.cfg, st); err != nil {
			return nil, err
		}
	}
	core, err := compressTSTCore(t.cfg, st)
	if err != nil {
		return nil, err
	}
	c := &Compressed{cfg: t.cfg}
	c.cur.Store(&cmpState{gen: st.gen, core: core, trajs: st.trajs})
	return c, nil
}

// compressTSTCore encodes one compacted trieState as a tSTAT core.
func compressTSTCore(cfg Config, st *trieState) (*cmpCore, error) {
	if st == nil || st.root == nil {
		return nil, errors.New("rptrie: nil trie")
	}
	np := len(cfg.Pivots)
	if !cfg.Measure.IsMetric() {
		np = 0
	}

	// Flatten to BFS order; node ids are positions in this order.
	order := make([]*node, 1, st.numNodes+1)
	order[0] = st.root
	for i := 0; i < len(order); i++ {
		order = append(order, order[i].children...)
	}
	n := len(order)

	// Alphabet: sorted distinct labels of every edge.
	alpha := map[uint64]struct{}{}
	for _, nd := range order[1:] {
		alpha[nd.z] = struct{}{}
	}
	core := &cmpCore{
		np:       np,
		numNodes: st.numNodes,
	}
	alphaVals := make([]uint64, 0, len(alpha))
	for z := range alpha {
		alphaVals = append(alphaVals, z)
	}
	sort.Slice(alphaVals, func(i, j int) bool { return alphaVals[i] < alphaVals[j] })
	core.alphabet = packInts(alphaVals)
	core.alphaN = len(alphaVals)

	// Pivot quantization LUTs over the root's ranges (the root range
	// is the union of every subtree's, so it spans all node ranges).
	if np > 0 {
		core.hrLUT = make([]float64, np*hrBuckets)
		for j := 0; j < np; j++ {
			lo, hi := st.root.hr[j].Min, st.root.hr[j].Max
			step := (hi - lo) / (hrBuckets - 1)
			for b := 0; b < hrBuckets; b++ {
				core.hrLUT[j*hrBuckets+b] = lo + float64(b)*step
			}
			// Pin the endpoints so clamped buckets decode exactly.
			core.hrLUT[j*hrBuckets] = lo
			core.hrLUT[j*hrBuckets+hrBuckets-1] = hi
		}
		core.hrq = make([]uint8, 0, n*np)
	}

	core.lo = bits.NewSet(n)
	core.hi = bits.NewSet(n)
	core.louds = bits.NewSet(2 * n)
	labels := make([]uint64, 0, n-1)
	minLens := make([]uint64, n)
	maxLens := make([]uint64, n)
	maxDepths := make([]uint64, n)
	var leafMinLens, leafMaxLens []uint64
	core.leafOff = append(core.leafOff, 0)

	for v, nd := range order {
		pureLeaf := nd.leaf != nil && len(nd.children) == 0
		core.lo.PushBit(nd.leaf != nil && !pureLeaf)
		core.hi.PushBit(pureLeaf)
		if !pureLeaf {
			core.louds.PushN(false, len(nd.children))
			core.louds.PushBit(true)
		}
		for _, c := range nd.children {
			labels = append(labels, uint64(core.symbolIndex(c.z)))
		}
		if nd.minLen < 0 || nd.maxLen < 0 || nd.maxDepthBelow < 0 {
			return nil, errors.New("rptrie: negative node metadata")
		}
		minLens[v] = uint64(nd.minLen)
		maxLens[v] = uint64(nd.maxLen)
		maxDepths[v] = uint64(nd.maxDepthBelow)
		for j := 0; j < np; j++ {
			core.hrq = append(core.hrq,
				core.quantizeDown(j, nd.hr[j].Min)|core.quantizeUp(j, nd.hr[j].Max)<<4)
		}
		if nd.leaf != nil {
			l := nd.leaf
			core.leafTids = append(core.leafTids, l.tids...)
			core.leafOff = append(core.leafOff, int32(len(core.leafTids)))
			core.leafDmax = append(core.leafDmax, f32Up(l.dmax))
			leafMinLens = append(leafMinLens, uint64(l.minLen))
			leafMaxLens = append(leafMaxLens, uint64(l.maxLen))
		}
	}
	core.lo.Seal()
	core.hi.Seal()
	core.louds.Seal()
	core.labels = packInts(labels)
	core.minLen = packInts(minLens)
	core.maxLen = packInts(maxLens)
	core.maxDepth = packInts(maxDepths)
	core.leafMinLen = packInts(leafMinLens)
	core.leafMaxLen = packInts(leafMaxLens)
	core.numLeafs = len(core.leafDmax)
	if st.numLeafs != 0 && core.numLeafs != st.numLeafs {
		return nil, fmt.Errorf("rptrie: leaf count mismatch (%d encoded, %d expected)", core.numLeafs, st.numLeafs)
	}
	return core, nil
}

// symbolIndex returns z's position in the sorted alphabet.
func (c *cmpCore) symbolIndex(z uint64) int {
	return sort.Search(c.alphaN, func(i int) bool { return c.alphabet.get(i) >= z })
}

// quantizeDown returns the largest bucket whose decoded value does
// not exceed v — the admissible encoding of an interval minimum.
func (c *cmpCore) quantizeDown(j int, v float64) uint8 {
	lut := c.hrLUT[j*hrBuckets : (j+1)*hrBuckets]
	b := sort.Search(hrBuckets, func(i int) bool { return lut[i] > v })
	if b == 0 {
		return 0
	}
	return uint8(b - 1)
}

// quantizeUp returns the smallest bucket whose decoded value is at
// least v — the admissible encoding of an interval maximum.
func (c *cmpCore) quantizeUp(j int, v float64) uint8 {
	lut := c.hrLUT[j*hrBuckets : (j+1)*hrBuckets]
	b := sort.Search(hrBuckets, func(i int) bool { return lut[i] >= v })
	if b >= hrBuckets {
		return hrBuckets - 1
	}
	return uint8(b)
}

// childrenRange returns the BFS id of node v's first child and its
// child count. Child ids are consecutive.
func (c *cmpCore) childrenRange(v int) (first, count int) {
	if c.hi.Get(v) {
		return 0, 0 // pure leaf
	}
	g := v - c.hi.Rank1(v) // group index among non-pure-leaf nodes
	start := 0
	if g > 0 {
		start = c.louds.Select1(g-1) + 1
	}
	end := c.louds.Select1(g)
	return start - g + 1, end - start
}

// terminalIndex returns v's payload index, or -1 when v is not
// terminal.
func (c *cmpCore) terminalIndex(v int) int {
	if !c.lo.Get(v) && !c.hi.Get(v) {
		return -1
	}
	return c.lo.Rank1(v) + c.hi.Rank1(v)
}

// state returns the current immutable snapshot.
func (x *Compressed) state() *cmpState { return x.cur.Load() }

// Generation returns the snapshot's generation counter; see
// Trie.Generation.
func (x *Compressed) Generation() uint64 { return x.state().gen }

// DeltaLen returns the number of pending (uncompacted) mutations.
func (x *Compressed) DeltaLen() int { return x.state().delta.size() }

// NumNodes returns the node count inherited from the source trie.
func (x *Compressed) NumNodes() int { return x.state().core.numNodes }

// NumLeaves returns the leaf count inherited from the source trie.
func (x *Compressed) NumLeaves() int { return x.state().core.numLeafs }

// Len returns the number of live indexed trajectories.
func (x *Compressed) Len() int { return x.state().live() }

// Config returns the build configuration inherited from the source
// trie.
func (x *Compressed) Config() Config { return x.cfg }

// Trajectory returns the live indexed trajectory with the given id,
// or nil when the id is unknown or tombstoned.
func (x *Compressed) Trajectory(id int) *geo.Trajectory {
	st := x.state()
	if tr, hit := st.delta.get(int32(id)); hit {
		return tr
	}
	return st.trajs[int32(id)]
}

// Insert adds trajectories as pending inserts; see Trie.Insert. The
// staging logic is shared with the other layouts (dynamic.go).
func (x *Compressed) Insert(trs ...*geo.Trajectory) error {
	if len(trs) == 0 {
		return nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	st := x.cur.Load()
	nd, err := stageInsert(st.delta, st.trajs, trs)
	if err != nil {
		return err
	}
	x.cur.Store(st.withDelta(nd))
	return nil
}

// Delete removes the given ids, returning how many were live; see
// Trie.Delete.
func (x *Compressed) Delete(ids ...int) int {
	if len(ids) == 0 {
		return 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	st := x.cur.Load()
	nd, n := stageDelete(st.delta, st.trajs, ids)
	if n == 0 {
		return 0
	}
	x.cur.Store(st.withDelta(nd))
	return n
}

// Upsert inserts trajectories, replacing live ids; see Trie.Upsert.
func (x *Compressed) Upsert(trs ...*geo.Trajectory) error {
	if len(trs) == 0 {
		return nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	st := x.cur.Load()
	nd, err := stageUpsert(st.delta, st.trajs, trs)
	if err != nil {
		return err
	}
	x.cur.Store(st.withDelta(nd))
	return nil
}

// Compact folds the pending delta into a rebuilt, re-encoded core;
// see Trie.Compact. The rebuild goes through the pointer layout, so
// nothing about the trit-array encoding limits which mutations are
// supported.
func (x *Compressed) Compact() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	st := x.cur.Load()
	if st.delta.empty() {
		return nil
	}
	ts, err := buildState(x.cfg, st.delta.merged(st.trajs))
	if err != nil {
		return err
	}
	core, err := compressTSTCore(x.cfg, ts)
	if err != nil {
		return err
	}
	x.cur.Store(&cmpState{gen: st.gen + 1, core: core, trajs: ts.trajs})
	return nil
}

// SizeBytes reports the in-memory footprint of the index structure,
// excluding the raw trajectories.
func (x *Compressed) SizeBytes() int {
	st := x.state()
	return st.core.sizeBytes() + st.delta.sizeBytes()
}

func (c *cmpCore) sizeBytes() int {
	sz := c.alphabet.sizeBytes() +
		c.lo.SizeBytes() + c.hi.SizeBytes() + c.louds.SizeBytes() +
		c.labels.sizeBytes() +
		c.minLen.sizeBytes() + c.maxLen.sizeBytes() + c.maxDepth.sizeBytes() +
		len(c.hrq) + len(c.hrLUT)*8 +
		len(c.leafTids)*4 + len(c.leafOff)*4 + len(c.leafDmax)*4 +
		c.leafMinLen.sizeBytes() + c.leafMaxLen.sizeBytes()
	return sz
}
