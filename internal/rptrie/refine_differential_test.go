package rptrie

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/oracle"
	"repose/internal/topk"
)

// Differential testing of the refined query modes: subtrajectory
// search, time-windowed search, and their composition answer seeded
// random queries over seeded random timestamped datasets, interleaved
// with mutations, and every answer is pinned BIT-IDENTICALLY to
// internal/oracle's brute-force references — distances, ids, and
// matched [Start, End) segments all must agree exactly, across every
// measure and all three layouts. Failure messages lead with the case
// seed.

// refinedIndex is dynIndex plus the option-carrying entry points the
// refined modes go through.
type refinedIndex interface {
	dynIndex
	SearchContext(ctx context.Context, q []geo.Point, k int, opt SearchOptions) ([]topk.Item, error)
}

// attachTimes timestamps roughly two thirds of ds in place: ascending
// starts with occasional repeats (vehicles stop), leaving the rest
// untimestamped so windowed queries exercise the never-matches rule.
func attachTimes(rng *rand.Rand, ds []*geo.Trajectory) {
	for _, tr := range ds {
		if rng.Intn(3) == 0 {
			tr.Times = nil
			continue
		}
		ts := make([]int64, len(tr.Points))
		cur := rng.Int63n(500)
		for i := range ts {
			ts[i] = cur
			cur += rng.Int63n(40)
		}
		tr.Times = ts
	}
}

// randomSpec draws one refined query mode: subtrajectory, windowed,
// or both composed.
func randomSpec(rng *rand.Rand) RefineSpec {
	var sp RefineSpec
	switch rng.Intn(3) {
	case 0:
		sp.Sub = true
	case 1:
		sp.Window = true
	default:
		sp.Sub, sp.Window = true, true
	}
	if sp.Sub {
		sp.MinSeg = rng.Intn(4)     // 0 exercises the ≥1 normalization
		sp.MaxSeg = rng.Intn(9) - 1 // -1..7; ≤0 means unbounded
	}
	if sp.Window {
		from := rng.Int63n(900) - 50
		sp.From = from
		sp.To = from + rng.Int63n(400)
	}
	return sp
}

func specOracle(sp RefineSpec) oracle.Spec {
	return oracle.Spec{Sub: sp.Sub, MinSeg: sp.MinSeg, MaxSeg: sp.MaxSeg, Window: sp.Window, From: sp.From, To: sp.To}
}

func TestDifferentialRefinedVsOracle(t *testing.T) {
	datasets := diffDatasetsFull
	if testing.Short() {
		datasets = diffDatasetsShort
	}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	for _, m := range dist.Measures() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			for _, layout := range dynLayouts {
				cases := 0
				for di := 0; di < datasets; di++ {
					seed := int64(0x5EEDF + 1000*int(m) + di)
					cases += runRefinedCase(t, layout, m, p, region, seed)
				}
				if cases < 1000 && !testing.Short() {
					t.Fatalf("layout %s ran only %d refined cases, want ≥ 1000", layout, cases)
				}
			}
		})
	}
}

// runRefinedCase runs one timestamped dataset's script — refined
// queries before, during, and after mutations — and returns how many
// query cases it compared.
func runRefinedCase(t *testing.T, layout string, m dist.Measure, p dist.Params, region geo.Rect, seed int64) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := grid.NewWithBits(region, 3+rng.Intn(3))
	if err != nil {
		t.Fatal(err)
	}
	ds := randomDataset(rng, 30+rng.Intn(30))
	attachTimes(rng, ds)
	cfg := Config{
		Measure:  m,
		Params:   p,
		Grid:     g,
		Optimize: rng.Intn(2) == 0 && m.OrderIndependent(),
	}
	idx := buildDyn(t, layout, cfg, ds).(refinedIndex)
	mirror := oracle.NewSet(ds)
	nextID := 1000
	cases := 0

	label := func(phase string, i int) string {
		return fmt.Sprintf("seed=%d layout=%s measure=%v %s[%d]", seed, layout, m, phase, i)
	}
	compare := func(ctx string) {
		q := randomDataset(rng, 1)[0]
		k := 1 + rng.Intn(12)
		sp := randomSpec(rng)
		opt := SearchOptions{Refiner: NewRefiner(m, p, sp)}
		if rng.Intn(4) == 0 {
			opt.RefineWorkers = 2 + rng.Intn(3) // parallel leaves must stay bit-identical
		}
		got, err := idx.SearchContext(nil, q.Points, k, opt)
		if err != nil {
			t.Fatalf("%s: SearchContext: %v", ctx, err)
		}
		want := mirror.TopKRefined(m, p, q.Points, k, specOracle(sp))
		assertRefinedTopK(t, ctx+fmt.Sprintf(" spec=%+v k=%d", sp, k), m, p, mirror, q.Points, specOracle(sp), got, want)
		if rs, ok := idx.(interface {
			SearchRadiusContext(ctx context.Context, q []geo.Point, radius float64, opt SearchOptions) ([]topk.Item, error)
		}); ok && rng.Intn(4) == 0 {
			radius := 0.2 + rng.Float64()*3
			gotR, err := rs.SearchRadiusContext(nil, q.Points, radius, opt)
			if err != nil {
				t.Fatalf("%s: SearchRadiusContext: %v", ctx, err)
			}
			wantR := mirror.RadiusRefined(m, p, q.Points, radius, specOracle(sp))
			assertRefinedItems(t, ctx+fmt.Sprintf(" spec=%+v radius=%g", sp, radius), gotR, wantR)
		}
		cases++
	}

	for i := 0; i < diffPreQueries; i++ {
		compare(label("pre", i))
	}
	for step := 0; step < diffMutSteps; step++ {
		switch r := rng.Intn(10); {
		case r < 4:
			n := 1 + rng.Intn(3)
			fresh := randomFresh(rng, nextID, n)
			attachTimes(rng, fresh)
			nextID += n
			if err := idx.Insert(fresh...); err != nil {
				t.Fatalf("%s: insert: %v", label("mut", step), err)
			}
			mirror.Insert(fresh...)
		case r < 8:
			ids := mirror.IDs()
			if len(ids) == 0 {
				continue
			}
			victims := []int{ids[rng.Intn(len(ids))]}
			got := idx.Delete(victims...)
			want := mirror.Delete(victims...)
			if got != want {
				t.Fatalf("%s: delete removed %d, oracle %d", label("mut", step), got, want)
			}
		case r < 9:
			ids := mirror.IDs()
			if len(ids) == 0 {
				continue
			}
			repl := randomFresh(rng, ids[rng.Intn(len(ids))], 1)
			attachTimes(rng, repl)
			if err := idx.Upsert(repl...); err != nil {
				t.Fatalf("%s: upsert: %v", label("mut", step), err)
			}
			mirror.Insert(repl...)
		default:
			if err := idx.Compact(); err != nil {
				t.Fatalf("%s: compact: %v", label("mut", step), err)
			}
		}
		if step%2 == 1 {
			compare(label("mut", step))
		}
	}
	if err := idx.Compact(); err != nil {
		t.Fatalf("seed=%d: final compact: %v", seed, err)
	}
	for i := 0; i < diffPostQueries; i++ {
		compare(label("post", i))
	}
	return cases
}

// assertRefinedTopK pins a refined top-k answer to the oracle:
// bit-identical distance profile (no epsilon — the index and the
// brute-force reference share the segment-sweep kernels), and every
// reported item's (Dist, Start, End) must equal the oracle's
// tie-broken refinement of that exact trajectory. Result sets may
// differ from the oracle only inside tied-distance groups, the same
// caveat the whole-trajectory differential test documents (subtree
// pruning at lb ≥ dk may drop a tied candidate the oracle keeps).
func assertRefinedTopK(t *testing.T, ctx string, m dist.Measure, p dist.Params, mirror *oracle.Set, q []geo.Point, sp oracle.Spec, got, want []topk.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\ngot  %v\nwant %v", ctx, len(got), len(want), got, want)
	}
	seen := make(map[int]bool, len(got))
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("%s: rank %d distance %v, oracle %v\ngot  %v\nwant %v", ctx, i, got[i].Dist, want[i].Dist, got, want)
		}
		if seen[got[i].ID] {
			t.Fatalf("%s: duplicate id %d in results %v", ctx, got[i].ID, got)
		}
		seen[got[i].ID] = true
		tr := mirror.Get(got[i].ID)
		if tr == nil {
			t.Fatalf("%s: result id %d is not live", ctx, got[i].ID)
		}
		d, s, e := sp.Refine(m, p, q, tr)
		if d != got[i].Dist || s != got[i].Start || e != got[i].End {
			t.Fatalf("%s: id %d reported (%v, [%d, %d)), oracle refinement (%v, [%d, %d))",
				ctx, got[i].ID, got[i].Dist, got[i].Start, got[i].End, d, s, e)
		}
	}
}

// assertRefinedItems pins got to the oracle item-for-item, bit-exact
// — the radius and same-index comparisons, where no tied-group caveat
// applies (every eligible candidate must appear).
func assertRefinedItems(t *testing.T, ctx string, got, want []topk.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\ngot  %v\nwant %v", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d = %+v, oracle %+v\ngot  %v\nwant %v", ctx, i, got[i], want[i], got, want)
		}
	}
}

// TestWholeRefinerMatchesNilPath: the default refiner expressed
// through the interface must answer byte-identically to the inline
// nil-refiner fast path, top-k and radius.
func TestWholeRefinerMatchesNilPath(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.Params{Epsilon: 0.5}
	for _, m := range dist.Measures() {
		ds := randomDataset(rng, 40)
		cfg := Config{Measure: m, Params: p, Grid: g}
		for _, layout := range dynLayouts {
			idx := buildDyn(t, layout, cfg, ds).(refinedIndex)
			for i := 0; i < 20; i++ {
				q := randomDataset(rng, 1)[0]
				plain, err := idx.SearchContext(nil, q.Points, 5, SearchOptions{})
				if err != nil {
					t.Fatal(err)
				}
				viaRefiner, err := idx.SearchContext(nil, q.Points, 5, SearchOptions{Refiner: WholeRefiner(m, p)})
				if err != nil {
					t.Fatal(err)
				}
				assertRefinedItems(t, fmt.Sprintf("measure=%v layout=%s i=%d", m, layout, i), viaRefiner, plain)
				if rs, ok := idx.(interface {
					SearchRadiusContext(ctx context.Context, q []geo.Point, radius float64, opt SearchOptions) ([]topk.Item, error)
				}); ok {
					radius := 0.5 + rng.Float64()*2
					plainR, err := rs.SearchRadiusContext(nil, q.Points, radius, SearchOptions{})
					if err != nil {
						t.Fatal(err)
					}
					refR, err := rs.SearchRadiusContext(nil, q.Points, radius, SearchOptions{Refiner: WholeRefiner(m, p)})
					if err != nil {
						t.Fatal(err)
					}
					assertRefinedItems(t, fmt.Sprintf("radius measure=%v layout=%s i=%d", m, layout, i), refR, plainR)
				}
			}
		}
	}
}
