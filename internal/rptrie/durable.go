package rptrie

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"repose/internal/geo"
	"repose/internal/storage"
	"repose/internal/topk"
)

// Durable is the disk-backed third backing mode, alongside the
// pointer and succinct layouts: it wraps either of them and journals
// every mutation through internal/storage so the partition recovers
// to its exact pre-crash generation after kill -9.
//
// Protocol (the WAL-before-acknowledge discipline, see storage's
// package doc): a mutation applies to the in-memory index, appends
// one WAL record carrying the resulting generation, and is
// acknowledged only after the record is fsynced (concurrent
// committers share fsyncs — group commit). Checkpoint folds the
// current index image into the page file and resets the log;
// Compact triggers one automatically, since the rebuild has already
// paid for the image. Queries go straight to the wrapped index —
// the delta-empty hot path is untouched and stays allocation-free.
//
// A storage failure in the middle of a mutation leaves durability
// unknown, so it poisons the handle: the failed mutation is rolled
// back when no later mutation has applied, and every subsequent
// mutation fails with the original error. Queries keep answering
// from memory.
type Durable struct {
	mu              sync.Mutex
	inner           innerIndex
	store           *storage.Store
	dir             string
	layout          Layout
	noCkptOnCompact bool
	broken          error
}

// innerIndex is the layout surface Durable wraps; *Trie, *Succinct,
// and *Compressed all satisfy it.
type innerIndex interface {
	Insert(trs ...*geo.Trajectory) error
	Delete(ids ...int) int
	Upsert(trs ...*geo.Trajectory) error
	Compact() error
	Generation() uint64
	DeltaLen() int
	Len() int
	SizeBytes() int
	Config() Config
	Search(q []geo.Point, k int) []topk.Item
	SearchAppend(dst []topk.Item, q []geo.Point, k int) []topk.Item
	SearchContext(ctx context.Context, q []geo.Point, k int, opt SearchOptions) ([]topk.Item, error)
	BoundContext(ctx context.Context, q []geo.Point, opt SearchOptions) (float64, error)
	LiveIDs() []int
	Save(w io.Writer) error
}

var (
	_ innerIndex = (*Trie)(nil)
	_ innerIndex = (*Succinct)(nil)
	_ innerIndex = (*Compressed)(nil)
)

// ErrNoDurable reports a directory holding no recoverable index —
// never created, wiped, or its creation crashed before the initial
// checkpoint was acknowledged. Callers fall back to rebuilding or to
// a peer restore.
var ErrNoDurable = errors.New("rptrie: no recoverable durable index")

// ErrDurability reports a storage failure that left a mutation's
// durability unknown; the handle is poisoned read-only.
var ErrDurability = errors.New("rptrie: durable log write failed; index is read-only")

// WAL record types (storage record type byte).
const (
	recInsert  = byte(1)
	recDelete  = byte(2)
	recUpsert  = byte(3)
	recCompact = byte(4)
)

// Checkpoint image layout bytes (first byte of the image, ahead of
// the layout's own Save encoding).
const (
	imageTrie       = byte(0)
	imageSuccinct   = byte(1)
	imageCompressed = byte(2)
)

// walPayload is the gob body of one WAL record. Gen is the
// generation the mutation produced, the replay cross-check.
type walPayload struct {
	Trs []*geo.Trajectory
	IDs []int
	Gen uint64
}

// walVersion prefixes every WAL record payload written by this build,
// aligned with the image format's wireVersion (trajectories may carry
// timestamps from version 2 on; gob's field additivity does the rest).
// Legacy payloads were bare gob streams with no version byte — those
// always open with the uvarint byte length of walPayload's type
// descriptor, several dozen bytes, so a leading byte this small
// unambiguously marks a versioned record and replay accepts both.
const walVersion byte = 2

// DurableOptions configures the disk side of a Durable index.
type DurableOptions struct {
	// VFS is the filesystem to run on; nil means the real one.
	VFS storage.VFS
	// PageSize and PoolFrames pass through to storage.Options.
	PageSize   int
	PoolFrames int
	// Layout selects which layout BuildDurable installs the built
	// index in. The zero value is the pointer layout.
	Layout Layout
	// Succinct is the pre-Layout form of requesting LayoutSuccinct;
	// honored when Layout is left at its zero value.
	//
	// Deprecated: set Layout instead.
	Succinct bool
	// NoCheckpointOnCompact disables the automatic checkpoint after
	// Compact (the WAL then carries compaction as a replayed record).
	NoCheckpointOnCompact bool
}

func (o DurableOptions) storage() storage.Options {
	return storage.Options{VFS: o.VFS, PageSize: o.PageSize, PoolFrames: o.PoolFrames}
}

// layoutOf resolves the requested layout, honoring the deprecated
// Succinct flag.
func (o DurableOptions) layoutOf() Layout {
	if o.Layout == LayoutPointer && o.Succinct {
		return LayoutSuccinct
	}
	return o.Layout
}

// BuildDurable builds an index over ds (like Build, then converted to
// the requested layout like Compress or CompressTST) and installs it
// durably at dir, wiping whatever the directory held. It returns only
// after the initial checkpoint is on disk.
func BuildDurable(dir string, cfg Config, ds []*geo.Trajectory, o DurableOptions) (*Durable, error) {
	t, err := Build(cfg, ds)
	if err != nil {
		return nil, err
	}
	switch o.layoutOf() {
	case LayoutSuccinct:
		s, err := Compress(t)
		if err != nil {
			return nil, err
		}
		return WrapDurable(dir, s, o)
	case LayoutCompressed:
		c, err := CompressTST(t)
		if err != nil {
			return nil, err
		}
		return WrapDurable(dir, c, o)
	}
	return WrapDurable(dir, t, o)
}

// WrapDurable installs a pre-built index (a *Trie, *Succinct, or
// *Compressed, e.g. one restored from a peer snapshot) as the durable
// index at dir, wiping whatever the directory held. It returns only
// after the initial checkpoint is on disk.
func WrapDurable(dir string, idx any, o DurableOptions) (*Durable, error) {
	inner, layout, err := asInner(idx)
	if err != nil {
		return nil, err
	}
	if err := storage.Destroy(dir, o.VFS); err != nil {
		return nil, err
	}
	st, err := storage.Open(dir, o.storage())
	if err != nil {
		return nil, err
	}
	d := &Durable{inner: inner, store: st, dir: dir, layout: layout, noCkptOnCompact: o.NoCheckpointOnCompact}
	if err := d.Checkpoint(); err != nil {
		st.Close()
		return nil, err
	}
	return d, nil
}

// asInner narrows idx to the layouts Durable can wrap.
func asInner(idx any) (innerIndex, Layout, error) {
	switch v := idx.(type) {
	case *Trie:
		return v, LayoutPointer, nil
	case *Succinct:
		return v, LayoutSuccinct, nil
	case *Compressed:
		return v, LayoutCompressed, nil
	default:
		return nil, 0, fmt.Errorf("rptrie: cannot make a %T durable", idx)
	}
}

// OpenDurable recovers the durable index at dir: it loads the newest
// checkpoint image and replays the WAL's well-formed records in LSN
// order, arriving at the exact generation the durable log prefix
// reaches. Directories without a recoverable index (never created,
// or creation crashed before the first checkpoint) fail with
// ErrNoDurable.
func OpenDurable(dir string, o DurableOptions) (*Durable, error) {
	st, err := storage.Open(dir, o.storage())
	if err != nil {
		if errors.Is(err, storage.ErrCorrupt) {
			return nil, fmt.Errorf("%w: %s: %v", ErrNoDurable, dir, err)
		}
		return nil, err
	}
	d, err := recoverIndex(st, dir, o)
	if err != nil {
		st.Close()
		return nil, err
	}
	return d, nil
}

// recoverIndex rebuilds the in-memory index from st's checkpoint + WAL.
func recoverIndex(st *storage.Store, dir string, o DurableOptions) (*Durable, error) {
	if !st.HasCheckpoint() {
		return nil, fmt.Errorf("%w: %s: store bootstrapped but never checkpointed", ErrNoDurable, dir)
	}
	image, _, err := st.LoadCheckpoint()
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNoDurable, dir, err)
	}
	if len(image) == 0 {
		return nil, fmt.Errorf("%w: %s: empty checkpoint image", ErrNoDurable, dir)
	}
	var inner innerIndex
	layout := LayoutPointer
	switch image[0] {
	case imageTrie:
		t, err := ReadTrie(bytes.NewReader(image[1:]))
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrNoDurable, dir, err)
		}
		inner = t
	case imageSuccinct:
		s, err := ReadSuccinct(bytes.NewReader(image[1:]))
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrNoDurable, dir, err)
		}
		inner, layout = s, LayoutSuccinct
	case imageCompressed:
		c, err := ReadCompressed(bytes.NewReader(image[1:]))
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrNoDurable, dir, err)
		}
		inner, layout = c, LayoutCompressed
	default:
		return nil, fmt.Errorf("%w: %s: unknown image layout %d", ErrNoDurable, dir, image[0])
	}
	if err := st.Replay(func(rec storage.WALRecord) error {
		return applyRecord(inner, rec)
	}); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNoDurable, dir, err)
	}
	return &Durable{inner: inner, store: st, dir: dir, layout: layout, noCkptOnCompact: o.NoCheckpointOnCompact}, nil
}

// applyRecord re-applies one logged mutation during recovery. The
// staging code is deterministic, so the replayed generation must
// match the recorded one exactly; a mismatch means the image and log
// diverged and the state cannot be trusted.
func applyRecord(inner innerIndex, rec storage.WALRecord) error {
	payload := rec.Payload
	if len(payload) > 0 && payload[0] <= walVersion {
		// Versioned record (see walVersion): strip the prefix. Bytes
		// above walVersion are a legacy bare-gob payload's descriptor
		// length and decode as-is.
		payload = payload[1:]
	}
	var p walPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return fmt.Errorf("record %d undecodable: %v", rec.LSN, err)
	}
	if p.Gen <= inner.Generation() {
		// Already covered by the checkpoint; legal only for logs the
		// checkpoint obsoleted but whose reset was lost.
		return nil
	}
	switch rec.Type {
	case recInsert:
		if err := inner.Insert(p.Trs...); err != nil {
			return fmt.Errorf("record %d replay: %v", rec.LSN, err)
		}
	case recDelete:
		if n := inner.Delete(p.IDs...); n == 0 {
			return fmt.Errorf("record %d replay: logged delete removed nothing", rec.LSN)
		}
	case recUpsert:
		if err := inner.Upsert(p.Trs...); err != nil {
			return fmt.Errorf("record %d replay: %v", rec.LSN, err)
		}
	case recCompact:
		if err := inner.Compact(); err != nil {
			return fmt.Errorf("record %d replay: %v", rec.LSN, err)
		}
	default:
		return fmt.Errorf("record %d has unknown type %d", rec.LSN, rec.Type)
	}
	if got := inner.Generation(); got != p.Gen {
		return fmt.Errorf("record %d replayed to generation %d, logged %d", rec.LSN, got, p.Gen)
	}
	return nil
}

// snapshotOf captures the inner layout's current immutable state, so
// a mutation whose logging fails can be rolled back.
func snapshotOf(inner innerIndex) any {
	switch v := inner.(type) {
	case *Trie:
		return v.cur.Load()
	case *Succinct:
		return v.cur.Load()
	case *Compressed:
		return v.cur.Load()
	}
	return nil
}

// restoreSnapshot rolls the inner layout back to a snapshotOf result.
func restoreSnapshot(inner innerIndex, snap any) {
	switch v := inner.(type) {
	case *Trie:
		v.cur.Store(snap.(*trieState))
	case *Succinct:
		v.cur.Store(snap.(*succState))
	case *Compressed:
		v.cur.Store(snap.(*cmpState))
	}
}

// logMutation journals one applied mutation and returns its LSN. The
// caller holds d.mu and has already applied the mutation; prev is the
// pre-mutation state for rollback. On failure the handle is poisoned
// and the mutation rolled back (no later mutation can have applied —
// d.mu is held from apply through append).
func (d *Durable) logMutation(typ byte, p walPayload, prev any) (uint64, error) {
	var buf bytes.Buffer
	buf.WriteByte(walVersion)
	err := gob.NewEncoder(&buf).Encode(&p)
	var lsn uint64
	if err == nil {
		lsn, err = d.store.Append(typ, buf.Bytes())
	}
	if err != nil {
		restoreSnapshot(d.inner, prev)
		d.broken = fmt.Errorf("%w: %v", ErrDurability, err)
		return 0, d.broken
	}
	return lsn, nil
}

// ackSync makes the record durable, completing the acknowledge half
// of the protocol. Called without d.mu so concurrent committers share
// fsyncs. genAfter is the generation this mutation produced: if the
// sync fails and no later mutation has applied, the mutation is
// rolled back; either way the handle is poisoned.
func (d *Durable) ackSync(lsn uint64, genAfter uint64, prev any) error {
	if err := d.store.Sync(lsn); err != nil {
		d.mu.Lock()
		if d.inner.Generation() == genAfter {
			restoreSnapshot(d.inner, prev)
		}
		if d.broken == nil {
			d.broken = fmt.Errorf("%w: %v", ErrDurability, err)
		}
		err = d.broken
		d.mu.Unlock()
		return err
	}
	return nil
}

// Insert adds trajectories durably; see Trie.Insert. It returns only
// after the mutation's WAL record is fsynced.
func (d *Durable) Insert(trs ...*geo.Trajectory) error {
	if len(trs) == 0 {
		return nil
	}
	d.mu.Lock()
	if d.broken != nil {
		d.mu.Unlock()
		return d.broken
	}
	prev := snapshotOf(d.inner)
	if err := d.inner.Insert(trs...); err != nil {
		d.mu.Unlock()
		return err
	}
	gen := d.inner.Generation()
	lsn, err := d.logMutation(recInsert, walPayload{Trs: trs, Gen: gen}, prev)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return d.ackSync(lsn, gen, prev)
}

// Delete removes ids durably, returning how many were live; see
// Trie.Delete. A count of zero is returned without touching the log.
// On a storage failure the handle poisons, the deletion rolls back,
// and 0 is returned — the caller never gets an acknowledgement the
// log cannot honor.
func (d *Durable) Delete(ids ...int) int {
	if len(ids) == 0 {
		return 0
	}
	d.mu.Lock()
	if d.broken != nil {
		d.mu.Unlock()
		return 0
	}
	prev := snapshotOf(d.inner)
	n := d.inner.Delete(ids...)
	if n == 0 {
		d.mu.Unlock()
		return 0
	}
	gen := d.inner.Generation()
	lsn, err := d.logMutation(recDelete, walPayload{IDs: ids, Gen: gen}, prev)
	d.mu.Unlock()
	if err != nil {
		return 0
	}
	if d.ackSync(lsn, gen, prev) != nil {
		return 0
	}
	return n
}

// Upsert inserts with replace semantics, durably; see Trie.Upsert.
func (d *Durable) Upsert(trs ...*geo.Trajectory) error {
	if len(trs) == 0 {
		return nil
	}
	d.mu.Lock()
	if d.broken != nil {
		d.mu.Unlock()
		return d.broken
	}
	prev := snapshotOf(d.inner)
	if err := d.inner.Upsert(trs...); err != nil {
		d.mu.Unlock()
		return err
	}
	gen := d.inner.Generation()
	lsn, err := d.logMutation(recUpsert, walPayload{Trs: trs, Gen: gen}, prev)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return d.ackSync(lsn, gen, prev)
}

// Compact folds the pending delta into a rebuilt core, journals the
// compaction, and (unless disabled) checkpoints — the rebuild has
// already produced everything the image needs. A no-op on an empty
// delta.
func (d *Durable) Compact() error {
	d.mu.Lock()
	if d.broken != nil {
		d.mu.Unlock()
		return d.broken
	}
	if d.inner.DeltaLen() == 0 {
		d.mu.Unlock()
		return nil
	}
	prev := snapshotOf(d.inner)
	if err := d.inner.Compact(); err != nil {
		d.mu.Unlock()
		return err
	}
	gen := d.inner.Generation()
	lsn, err := d.logMutation(recCompact, walPayload{Gen: gen}, prev)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	if err := d.ackSync(lsn, gen, prev); err != nil {
		return err
	}
	if d.noCkptOnCompact {
		return nil
	}
	return d.Checkpoint()
}

// Checkpoint folds the current index image into the page file and
// resets the WAL (storage.Store.Checkpoint's copy-on-write protocol).
// Recovery cost drops to image-load plus whatever mutations follow.
func (d *Durable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.broken != nil {
		return d.broken
	}
	var buf bytes.Buffer
	layout := imageTrie
	switch d.layout {
	case LayoutSuccinct:
		layout = imageSuccinct
	case LayoutCompressed:
		layout = imageCompressed
	}
	buf.WriteByte(layout)
	if err := d.inner.Save(&buf); err != nil {
		return err
	}
	if err := d.store.Checkpoint(buf.Bytes(), d.inner.Generation()); err != nil {
		d.broken = fmt.Errorf("%w: %v", ErrDurability, err)
		return d.broken
	}
	return nil
}

// Close flushes and closes the store. The in-memory index keeps
// answering queries; mutations fail once closed.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	alreadyBroken := d.broken != nil
	if d.broken == nil {
		d.broken = errors.New("rptrie: durable index closed")
	}
	err := d.store.Close()
	if alreadyBroken && err == nil {
		// Closing a poisoned handle: surface nothing new.
		return nil
	}
	return err
}

// Err returns the poisoning error, nil while the handle is healthy.
func (d *Durable) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.broken
}

// Dir returns the store directory.
func (d *Durable) Dir() string { return d.dir }

// Layout reports the wrapped layout.
func (d *Durable) Layout() Layout { return d.layout }

// IsSuccinct reports whether the wrapped layout is the succinct one.
//
// Deprecated: use Layout.
func (d *Durable) IsSuccinct() bool { return d.layout == LayoutSuccinct }

// Generation returns the current snapshot's generation.
func (d *Durable) Generation() uint64 { return d.inner.Generation() }

// DeltaLen returns the number of pending (uncompacted) mutations.
func (d *Durable) DeltaLen() int { return d.inner.DeltaLen() }

// Len returns the number of live trajectories.
func (d *Durable) Len() int { return d.inner.Len() }

// Config returns the wrapped index's build configuration.
func (d *Durable) Config() Config { return d.inner.Config() }

// SizeBytes reports the wrapped index footprint (the disk store and
// buffer pool are not index state).
func (d *Durable) SizeBytes() int { return d.inner.SizeBytes() }

// Search answers a top-k query on the wrapped index.
func (d *Durable) Search(q []geo.Point, k int) []topk.Item { return d.inner.Search(q, k) }

// SearchAppend is Search appending results to dst.
func (d *Durable) SearchAppend(dst []topk.Item, q []geo.Point, k int) []topk.Item {
	return d.inner.SearchAppend(dst, q, k)
}

// SearchContext is Search honoring per-query options and a context.
func (d *Durable) SearchContext(ctx context.Context, q []geo.Point, k int, opt SearchOptions) ([]topk.Item, error) {
	return d.inner.SearchContext(ctx, q, k, opt)
}

// BoundContext returns an admissible lower bound on the distance from
// q to every trajectory held by the wrapped index; see
// Trie.BoundContext.
func (d *Durable) BoundContext(ctx context.Context, q []geo.Point, opt SearchOptions) (float64, error) {
	return d.inner.BoundContext(ctx, q, opt)
}

// SearchRadiusContext answers a range query when the wrapped layout
// supports one (the pointer and compressed layouts; succinct does
// not).
func (d *Durable) SearchRadiusContext(ctx context.Context, q []geo.Point, radius float64, opt SearchOptions) ([]topk.Item, error) {
	switch v := d.inner.(type) {
	case *Trie:
		return v.SearchRadiusContext(ctx, q, radius, opt)
	case *Compressed:
		return v.SearchRadiusContext(ctx, q, radius, opt)
	}
	return nil, errors.New("rptrie: durable succinct index does not support radius search")
}

// Save serializes the wrapped index in its layout's wire format
// (readable by ReadTrie, ReadSuccinct, or ReadCompressed per Layout)
// — the cluster snapshot path.
func (d *Durable) Save(w io.Writer) error { return d.inner.Save(w) }

// LiveIDs returns the ids of every live trajectory, unordered — the
// input for rebuilding a driver's routing directory after recovery and
// for computing a split's keep set.
func (d *Durable) LiveIDs() []int { return d.inner.LiveIDs() }

func liveIDsOf(core map[int32]*geo.Trajectory, dl *delta) []int {
	out := make([]int, 0, len(core))
	for tid := range core {
		if dl != nil {
			if _, dead := dl.dels[tid]; dead {
				continue
			}
		}
		out = append(out, int(tid))
	}
	if dl != nil {
		for _, tr := range dl.adds {
			out = append(out, tr.ID)
		}
	}
	return out
}
