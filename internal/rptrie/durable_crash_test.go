package rptrie

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/oracle"
	"repose/internal/pivot"
	"repose/internal/storage/failpoint"
)

// The crash-recovery differential harness: a seeded mutation script
// runs against a Durable index on the fault-injecting filesystem,
// crashing at every reachable IO point. After each crash the
// directory is reopened and the recovered index must sit at exactly
// one generation of the script's history — at least the last
// acknowledged one, never past the last attempted one — and answer
// Search / SearchRadius queries bit-identical to internal/oracle
// evaluated over that generation's live set. Failures print the seed
// and crash point, which reproduce the exact dataset, script, fault
// schedule, and tear pattern.

const crashMutSteps = 16

// crashOp is one pre-planned effective mutation. Every planned op
// advances the generation by exactly one, so op k produces
// generation k+1.
type crashOp struct {
	kind byte // 'i' insert, 'd' delete, 'u' upsert, 'c' compact
	trs  []*geo.Trajectory
	ids  []int
	gen  uint64
}

type crashQuery struct {
	q      []geo.Point
	k      int
	radius float64
}

type crashPlan struct {
	cfg     Config
	measure dist.Measure
	params  dist.Params
	ds      []*geo.Trajectory
	ops     []crashOp
	history [][]*geo.Trajectory // history[g] = live set at generation g
	queries []crashQuery
}

// planCrashScript derives the whole experiment from the seed: the
// dataset, the mutation script, the per-generation live sets, and the
// verification queries. The simulation below mirrors the delta
// staging rules exactly (deletes unstage pending inserts, compaction
// is a no-op on an empty delta), so it only plans ops that are
// effective — each one bumps the generation by one.
func planCrashScript(t *testing.T, seed int64) *crashPlan {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 3+rng.Intn(2))
	if err != nil {
		t.Fatal(err)
	}
	ds := randomDataset(rng, 20+rng.Intn(10))
	m := dist.Hausdorff
	if seed%2 == 1 {
		m = dist.Frechet
	}
	p := dist.Params{Epsilon: 0.5}
	var pivots []*geo.Trajectory
	if rng.Intn(2) == 0 {
		pivots = pivot.Select(ds, 2, 4, m, p, seed)
	}
	plan := &crashPlan{
		cfg:     Config{Measure: m, Params: p, Grid: g, Pivots: pivots},
		measure: m,
		params:  p,
		ds:      ds,
	}

	// Simulated index state: the live map plus the staged delta.
	live := make(map[int]*geo.Trajectory, len(ds))
	for _, tr := range ds {
		live[tr.ID] = tr
	}
	core := make(map[int]bool, len(ds)) // ids materialized in the core
	for _, tr := range ds {
		core[tr.ID] = true
	}
	adds := make(map[int]bool) // pending inserts since last compact
	dels := make(map[int]bool) // pending tombstones since last compact

	snapshot := func() []*geo.Trajectory {
		out := make([]*geo.Trajectory, 0, len(live))
		for _, tr := range live {
			out = append(out, tr)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out
	}
	plan.history = append(plan.history, snapshot()) // generation 0

	stageDel := func(id int) { // mirrors stageDelete for one live id
		if adds[id] {
			delete(adds, id)
		} else {
			dels[id] = true
		}
		delete(live, id)
	}
	liveIDs := func() []int {
		ids := make([]int, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		return ids
	}

	nextID := 5000
	gen := uint64(0)
	push := func(op crashOp) {
		gen++
		op.gen = gen
		plan.ops = append(plan.ops, op)
		plan.history = append(plan.history, snapshot())
	}
	for step := 0; step < crashMutSteps; step++ {
		switch r := rng.Intn(10); {
		case r < 4: // insert fresh
			n := 1 + rng.Intn(3)
			fresh := randomFresh(rng, nextID, n)
			nextID += n
			for _, tr := range fresh {
				live[tr.ID] = tr
				adds[tr.ID] = true
			}
			push(crashOp{kind: 'i', trs: fresh})
		case r < 7: // delete up to two distinct live ids
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			victims := []int{ids[rng.Intn(len(ids))]}
			if len(ids) > 1 && rng.Intn(2) == 0 {
				other := ids[rng.Intn(len(ids))]
				if other != victims[0] {
					victims = append(victims, other)
				}
			}
			for _, id := range victims {
				stageDel(id)
			}
			push(crashOp{kind: 'd', ids: victims})
		case r < 9: // upsert an existing id with new points
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			repl := randomFresh(rng, id, 1)
			stageDel(id)
			live[id] = repl[0]
			adds[id] = true
			push(crashOp{kind: 'u', trs: repl})
		default: // compact (and checkpoint), when the delta is nonempty
			if len(adds)+len(dels) == 0 {
				continue
			}
			for id := range live {
				core[id] = true
			}
			for id := range core {
				if _, ok := live[id]; !ok {
					delete(core, id)
				}
			}
			adds = make(map[int]bool)
			dels = make(map[int]bool)
			push(crashOp{kind: 'c'})
		}
	}

	for i := 0; i < 4; i++ {
		plan.queries = append(plan.queries, crashQuery{
			q:      randomDataset(rng, 1)[0].Points,
			k:      1 + rng.Intn(8),
			radius: 0.3 + rng.Float64()*2.5,
		})
	}
	return plan
}

func crashOpts(fs *failpoint.FS, layout string) DurableOptions {
	l, err := ParseLayout(layout)
	if err != nil {
		panic(err)
	}
	return DurableOptions{
		VFS:        fs,
		PageSize:   512,
		PoolFrames: 8,
		Layout:     l,
	}
}

// runCrashScript drives the plan against a fresh durable index at
// dir. It returns the last acknowledged generation (-1 when not even
// the initial checkpoint was acknowledged) and the last attempted one
// — the upper bound on what recovery may surface, since an
// unacknowledged record can still land durably when the crash
// interrupts its fsync. With crashTolerant false any failure is
// fatal (the dry run counting IO points).
func runCrashScript(t *testing.T, plan *crashPlan, fs *failpoint.FS, dir, layout string, crashTolerant bool) (acked, attempted int) {
	t.Helper()
	fatal := func(format string, args ...any) {
		t.Fatalf("seed=%d layout=%s: %s", fs.Seed(), layout, fmt.Sprintf(format, args...))
	}
	bail := func(err error) bool {
		return crashTolerant && (errors.Is(err, failpoint.ErrCrashed) || errors.Is(err, ErrDurability))
	}
	acked, attempted = -1, 0
	d, err := BuildDurable(dir, plan.cfg, plan.ds, crashOpts(fs, layout))
	if err != nil {
		if !bail(err) {
			fatal("BuildDurable: %v", err)
		}
		return acked, attempted
	}
	defer d.Close()
	acked = 0
	for _, op := range plan.ops {
		attempted = int(op.gen)
		var err error
		switch op.kind {
		case 'i':
			err = d.Insert(op.trs...)
		case 'u':
			err = d.Upsert(op.trs...)
		case 'c':
			err = d.Compact()
		case 'd':
			if n := d.Delete(op.ids...); n != len(op.ids) {
				if derr := d.Err(); derr != nil {
					if !bail(derr) {
						fatal("delete broke the handle: %v", derr)
					}
					return acked, attempted
				}
				fatal("gen %d: delete removed %d of %d planned live ids", op.gen, n, len(op.ids))
			}
		}
		if err != nil {
			if !bail(err) {
				fatal("gen %d op %q: %v", op.gen, op.kind, err)
			}
			return acked, attempted
		}
		if got := d.Generation(); got != op.gen {
			fatal("op %q acknowledged at generation %d, planned %d", op.kind, got, op.gen)
		}
		acked = int(op.gen)
	}
	if err := d.Close(); err != nil && !bail(err) {
		fatal("Close: %v", err)
	}
	return acked, attempted
}

// verifyCrashRecovered reopens the crashed directory and checks the
// durability contract against the plan's history and the oracle.
func verifyCrashRecovered(t *testing.T, plan *crashPlan, fs *failpoint.FS, dir, layout string, crashAt int64, acked, attempted int) {
	t.Helper()
	seed := fs.Seed()
	fatal := func(format string, args ...any) {
		t.Fatalf("seed=%d layout=%s crash@%d: %s", seed, layout, crashAt, fmt.Sprintf(format, args...))
	}
	d, err := OpenDurable(dir, crashOpts(fs, layout))
	if err != nil {
		// The only excusable outcome is a directory that never held an
		// acknowledged checkpoint: creation crashed before BuildDurable
		// returned.
		if errors.Is(err, ErrNoDurable) && acked < 0 {
			return
		}
		fatal("recovery failed with generation %d acknowledged: %v", acked, err)
	}
	defer d.Close()
	if d.Layout().String() != layout {
		fatal("recovered layout %v, want %s", d.Layout(), layout)
	}

	g := int(d.Generation())
	if g < acked {
		fatal("recovered generation %d below acknowledged %d — acknowledged durability violated", g, acked)
	}
	if g > attempted {
		fatal("recovered phantom generation %d, last attempted %d", g, attempted)
	}
	want := plan.history[g]

	gotIDs := d.LiveIDs()
	sort.Ints(gotIDs)
	if len(gotIDs) != len(want) {
		fatal("generation %d recovered %d live ids, history has %d", g, len(gotIDs), len(want))
	}
	for i, tr := range want {
		if gotIDs[i] != tr.ID {
			fatal("generation %d live id[%d] = %d, history has %d", g, i, gotIDs[i], tr.ID)
		}
	}

	mirror := oracle.NewSet(want)
	for qi, cq := range plan.queries {
		ctx := fmt.Sprintf("seed=%d layout=%s crash@%d gen=%d q[%d]", seed, layout, crashAt, g, qi)
		diffAssertTopK(t, ctx, plan.measure, plan.params, mirror, cq.q, cq.k, d.Search(cq.q, cq.k))
		if layout == "pointer" || layout == "compressed" {
			got, err := d.SearchRadiusContext(context.Background(), cq.q, cq.radius, SearchOptions{})
			if err != nil {
				fatal("radius search: %v", err)
			}
			diffAssertRadius(t, ctx, plan.measure, plan.params, mirror, cq.q, cq.radius, got)
		}
	}

	// The recovered handle must stay fully serviceable: accept a fresh
	// durable mutation and expose it.
	fresh := randomFresh(rand.New(rand.NewSource(seed^crashAt)), 900000, 1)
	if err := d.Insert(fresh...); err != nil {
		fatal("post-recovery insert: %v", err)
	}
	if got := int(d.Generation()); got != g+1 {
		fatal("post-recovery insert moved generation %d -> %d", g, got)
	}
	if d.Len() != len(want)+1 {
		fatal("post-recovery Len %d, want %d", d.Len(), len(want)+1)
	}
}

// TestDurableCrashAtEveryIO is the headline tentpole harness: every
// seed × layout first dry-runs the script to count its IO points,
// then replays it once per point with a scheduled crash there.
func TestDurableCrashAtEveryIO(t *testing.T) {
	seeds := []int64{101, 202}
	if v := os.Getenv("CRASH_SEED"); v != "" {
		// CI replays a fixed seed matrix, one seed per job.
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			seeds = []int64{n}
		}
	} else if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, layout := range dynLayouts {
			seed, layout := seed, layout
			t.Run(fmt.Sprintf("seed=%d/%s", seed, layout), func(t *testing.T) {
				t.Parallel()
				plan := planCrashScript(t, seed)
				if len(plan.ops) < crashMutSteps/2 {
					t.Fatalf("seed %d planned only %d effective ops", seed, len(plan.ops))
				}

				// Dry run: no faults, full script, and the final state
				// must already agree with the oracle end-to-end.
				dry := failpoint.New(seed)
				acked, attempted := runCrashScript(t, plan, dry, "part", layout, false)
				last := len(plan.history) - 1
				if acked != last || attempted != last {
					t.Fatalf("seed %d: dry run acked %d attempted %d, want %d", seed, acked, attempted, last)
				}
				total := dry.Ops() // before verify: its reopen does IO of its own
				verifyCrashRecovered(t, plan, dry, "part", layout, 0, acked, attempted)
				if total < 40 {
					t.Fatalf("seed %d: script exercised only %d IO points; too few to be interesting", seed, total)
				}

				stride := int64(1)
				if testing.Short() {
					stride = 7
				}
				for n := int64(1); n <= total; n += stride {
					fs := failpoint.New(seed, failpoint.WithCrashAt(n))
					acked, attempted := runCrashScript(t, plan, fs, "part", layout, true)
					if !fs.Crashed() {
						t.Fatalf("seed %d layout %s: crash point %d never fired (ops=%d)", seed, layout, n, fs.Ops())
					}
					fs.Restart()
					verifyCrashRecovered(t, plan, fs, "part", layout, n, acked, attempted)
				}
			})
		}
	}
}
