package rptrie

import (
	"errors"
	"fmt"
	"sort"

	"repose/internal/geo"
)

// Online index maintenance (the generation/compaction scheme).
//
// Both layouts keep their structural core immutable and absorb
// mutations into a small side overlay, the delta: pending inserts in
// an append buffer and pending deletes in a tombstone set. Every
// mutation builds a fresh immutable state (shallow core copy, staged
// delta, generation+1) and swaps it in atomically; a query loads
// exactly one state pointer up front, so it observes either all or
// none of any mutation — snapshot isolation without read locks.
// Compact folds the delta back into a rebuilt core (re-running the
// normal build, so z-value re-arrangement and all precomputed bound
// metadata stay exact) and installs the compacted state as the next
// generation.
//
// Staging shares everything a mutation leaves untouched: inserts
// append to the adds buffer in place (readers hold a fixed-length
// slice header, so writes past their length are invisible; writers
// serialize on the index mutex and always extend the newest state)
// and share the tombstone set, so a pure insert stream stages in
// O(batch) with no copying. Only deletes clone — the tombstone set
// when adding a stone, the adds buffer when unstaging a pending
// insert — keeping every published delta immutable to its readers.
//
// Admissibility under mutation: tombstoned members are filtered at
// leaf refinement, which only ever loosens the leaf's precomputed
// Dmax/HR/length bounds — the bounds stay valid lower-bound inputs.
// Pending inserts never enter the trie structure, so no stored bound
// covers them; they are answered by an exact linear scan of the
// append buffer (threshold-tightened, before the best-first loop, so
// they also *improve* pruning). An empty delta costs one nil check
// and the read path is byte-identical to the static one.

// ErrStale reports a query pinned to a generation newer than the
// index's current snapshot — the caller's read-your-writes pin cannot
// be satisfied by this replica.
var ErrStale = errors.New("rptrie: index snapshot older than pinned generation")

// delta is the immutable overlay of pending mutations on top of a
// compacted core. Readers share it; the stage* constructors below are
// the only writers, and they never mutate anything a published state
// can reach.
type delta struct {
	adds []*geo.Trajectory  // pending inserts, ids unique
	dels map[int32]struct{} // tombstones against the core; nil = none
}

// empty reports whether d holds no pending mutations.
func (d *delta) empty() bool {
	return d == nil || (len(d.adds) == 0 && len(d.dels) == 0)
}

// size returns the number of pending mutations.
func (d *delta) size() int {
	if d == nil {
		return 0
	}
	return len(d.adds) + len(d.dels)
}

// sizeBytes estimates the overlay's footprint, excluding raw points.
func (d *delta) sizeBytes() int {
	if d == nil {
		return 0
	}
	return len(d.adds)*8 + len(d.dels)*4
}

// indexOfAdd returns tid's position in the pending inserts, -1 when
// absent. Linear: the buffer is bounded by the compaction policy, and
// a scan costs no allocation (unlike the per-state id map it
// replaces, which made every mutation clone O(delta) state).
func (d *delta) indexOfAdd(tid int32) int {
	if d == nil {
		return -1
	}
	for i, tr := range d.adds {
		if int32(tr.ID) == tid {
			return i
		}
	}
	return -1
}

// get resolves tid against the overlay: (traj, true) for a pending
// insert, (nil, true) for a tombstone, (nil, false) to fall through
// to the core.
func (d *delta) get(tid int32) (*geo.Trajectory, bool) {
	if d == nil {
		return nil, false
	}
	if i := d.indexOfAdd(tid); i >= 0 {
		return d.adds[i], true
	}
	if _, dead := d.dels[tid]; dead {
		return nil, true
	}
	return nil, false
}

// stageInsert stages trs on top of d (which may be nil) against the
// given core, returning the successor delta. It fails — staging
// nothing — on empty trajectories, ids duplicated in the batch, and
// ids already live (in the core and not tombstoned, or pending).
func stageInsert(d *delta, core map[int32]*geo.Trajectory, trs []*geo.Trajectory) (*delta, error) {
	for i, tr := range trs {
		if tr == nil || len(tr.Points) == 0 {
			return nil, errors.New("rptrie: cannot insert an empty trajectory")
		}
		if !tr.ValidTimes() {
			return nil, fmt.Errorf("rptrie: trajectory %d has invalid timestamps", tr.ID)
		}
		tid := int32(tr.ID)
		for _, prev := range trs[:i] {
			if prev.ID == tr.ID {
				return nil, fmt.Errorf("rptrie: duplicate trajectory id %d", tr.ID)
			}
		}
		if d.indexOfAdd(tid) >= 0 {
			return nil, fmt.Errorf("rptrie: duplicate trajectory id %d", tr.ID)
		}
		if _, ok := core[tid]; ok {
			dead := false
			if d != nil {
				_, dead = d.dels[tid]
			}
			if !dead {
				return nil, fmt.Errorf("rptrie: duplicate trajectory id %d", tr.ID)
			}
			// A tombstoned core id may be re-inserted: the tombstone
			// keeps hiding the old version, the append buffer serves
			// the new one.
		}
	}
	nd := &delta{}
	if d != nil {
		nd.adds = d.adds
		nd.dels = d.dels
	}
	// Appending may write into backing-array capacity beyond every
	// published state's length — invisible to readers, and no older
	// state can be extended again because writers serialize and
	// always stage from the newest state.
	nd.adds = append(nd.adds, trs...)
	return nd, nil
}

// stageDelete stages the removal of ids on top of d, returning a
// fresh successor delta and how many ids were live. Unknown ids are
// skipped; callers use the count to decide whether to publish the
// successor (a zero count means it is observably identical to d).
func stageDelete(d *delta, core map[int32]*geo.Trajectory, ids []int) (*delta, int) {
	nd := &delta{}
	if d != nil {
		nd.adds = d.adds
		nd.dels = d.dels
	}
	addsCloned, delsCloned := false, false
	n := 0
	for _, id := range ids {
		tid := int32(id)
		if i := nd.indexOfAdd(tid); i >= 0 {
			// Unstage a pending insert: clone the buffer once, then
			// swap-remove in the clone.
			if !addsCloned {
				nd.adds = append([]*geo.Trajectory(nil), nd.adds...)
				addsCloned = true
			}
			last := len(nd.adds) - 1
			nd.adds[i] = nd.adds[last]
			nd.adds = nd.adds[:last]
			n++
			continue
		}
		if _, ok := core[tid]; ok {
			if _, dead := nd.dels[tid]; !dead {
				if !delsCloned {
					clone := make(map[int32]struct{}, len(nd.dels)+1)
					for k := range nd.dels {
						clone[k] = struct{}{}
					}
					nd.dels = clone
					delsCloned = true
				}
				nd.dels[tid] = struct{}{}
				n++
			}
		}
	}
	return nd, n
}

// stageUpsert stages trs with replace semantics: live versions of the
// ids are removed first, then the new versions are inserted. It fails
// — staging nothing — on empty trajectories or in-batch duplicates.
func stageUpsert(d *delta, core map[int32]*geo.Trajectory, trs []*geo.Trajectory) (*delta, error) {
	ids := make([]int, len(trs))
	for i, tr := range trs {
		if tr == nil || len(tr.Points) == 0 {
			return nil, errors.New("rptrie: cannot insert an empty trajectory")
		}
		if !tr.ValidTimes() {
			return nil, fmt.Errorf("rptrie: trajectory %d has invalid timestamps", tr.ID)
		}
		for _, prev := range trs[:i] {
			if prev.ID == tr.ID {
				return nil, fmt.Errorf("rptrie: duplicate trajectory id %d in batch", tr.ID)
			}
		}
		ids[i] = tr.ID
	}
	nd, _ := stageDelete(d, core, ids)
	return stageInsert(nd, core, trs)
}

// merged materializes the live trajectory set (core minus tombstones
// plus pending inserts), sorted by id for a deterministic rebuild.
func (d *delta) merged(core map[int32]*geo.Trajectory) []*geo.Trajectory {
	out := make([]*geo.Trajectory, 0, len(core)+d.size())
	for tid, tr := range core {
		if d != nil {
			if _, dead := d.dels[tid]; dead {
				continue
			}
		}
		out = append(out, tr)
	}
	if d != nil {
		out = append(out, d.adds...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// withDelta derives the next generation from st with nd as overlay.
func (st *trieState) withDelta(nd *delta) *trieState {
	ns := *st
	ns.delta = nd
	ns.gen = st.gen + 1
	return &ns
}

// compactedState folds st's delta into a freshly built core. It is a
// pure function of st: callers decide whether the result becomes the
// index's next generation.
func compactedState(cfg Config, st *trieState) (*trieState, error) {
	if st.delta.empty() {
		return st, nil
	}
	ns, err := buildState(cfg, st.delta.merged(st.trajs))
	if err != nil {
		return nil, err
	}
	ns.gen = st.gen
	return ns, nil
}

// Generation returns the snapshot's generation counter. It increases
// by one per applied mutation batch and per compaction.
func (t *Trie) Generation() uint64 { return t.state().gen }

// DeltaLen returns the number of pending (uncompacted) mutations.
func (t *Trie) DeltaLen() int { return t.state().delta.size() }

// Insert adds trajectories to the live index as pending inserts,
// visible to every query issued after it returns. It fails — without
// applying anything — on an empty trajectory or an id that is already
// live.
func (t *Trie) Insert(trs ...*geo.Trajectory) error {
	if len(trs) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.cur.Load()
	nd, err := stageInsert(st.delta, st.trajs, trs)
	if err != nil {
		return err
	}
	t.cur.Store(st.withDelta(nd))
	return nil
}

// Delete removes the given ids from the live index, returning how many
// were actually live. Queries issued after it returns never see them.
func (t *Trie) Delete(ids ...int) int {
	if len(ids) == 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.cur.Load()
	nd, n := stageDelete(st.delta, st.trajs, ids)
	if n == 0 {
		return 0
	}
	t.cur.Store(st.withDelta(nd))
	return n
}

// Upsert inserts trajectories, replacing any live trajectory sharing
// an id. The replacement is atomic per snapshot: no query observes the
// old and new version of an id together, or neither.
func (t *Trie) Upsert(trs ...*geo.Trajectory) error {
	if len(trs) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.cur.Load()
	nd, err := stageUpsert(st.delta, st.trajs, trs)
	if err != nil {
		return err
	}
	t.cur.Store(st.withDelta(nd))
	return nil
}

// Compact folds the pending delta into a rebuilt core, restoring the
// fully indexed (zero-overlay) read path. A no-op when the delta is
// empty. In-flight queries keep their snapshot; queries issued after
// it returns see the compacted generation.
func (t *Trie) Compact() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.cur.Load()
	if st.delta.empty() {
		return nil
	}
	ns, err := compactedState(t.cfg, st)
	if err != nil {
		return err
	}
	ns.gen = st.gen + 1
	t.cur.Store(ns)
	return nil
}
