package rptrie

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/leakcheck"
	"repose/internal/oracle"
	"repose/internal/storage"
	"repose/internal/storage/failpoint"
)

func durableCfg(t *testing.T) Config {
	t.Helper()
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Measure: dist.Hausdorff, Grid: g}
}

// TestDurableRoundTripOnDisk exercises the real filesystem: build,
// mutate, close, reopen in a fresh process-equivalent, and compare
// answers to the oracle. Both layouts.
func TestDurableRoundTripOnDisk(t *testing.T) {
	base := leakcheck.Base()
	defer leakcheck.Settle(t, base)
	for _, layout := range dynLayouts {
		t.Run(layout, func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(77))
			ds := randomDataset(rng, 25)
			cfg := durableCfg(t)
			l, err := ParseLayout(layout)
			if err != nil {
				t.Fatal(err)
			}
			opts := DurableOptions{Layout: l}

			d, err := BuildDurable(dir, cfg, ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			mirror := oracle.NewSet(ds)
			fresh := randomFresh(rng, 1000, 3)
			if err := d.Insert(fresh...); err != nil {
				t.Fatal(err)
			}
			mirror.Insert(fresh...)
			if n := d.Delete(ds[0].ID, ds[1].ID); n != 2 {
				t.Fatalf("delete removed %d, want 2", n)
			}
			mirror.Delete(ds[0].ID, ds[1].ID)
			repl := randomFresh(rng, ds[2].ID, 1)
			if err := d.Upsert(repl...); err != nil {
				t.Fatal(err)
			}
			mirror.Insert(repl...)
			gen := d.Generation()
			if gen != 3 {
				t.Fatalf("generation %d after three mutations, want 3", gen)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			// Mutations after close must fail, queries keep working.
			if err := d.Insert(randomFresh(rng, 2000, 1)...); err == nil {
				t.Fatal("insert after Close succeeded")
			}
			if got := d.Search(ds[3].Points, 1); len(got) == 0 {
				t.Fatal("query after Close returned nothing")
			}

			d2, err := OpenDurable(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			if d2.Generation() != gen {
				t.Fatalf("recovered generation %d, want %d", d2.Generation(), gen)
			}
			if d2.Layout() != l {
				t.Fatalf("recovered layout %v, want %v", d2.Layout(), l)
			}
			if d2.Len() != mirror.Len() {
				t.Fatalf("recovered %d live, oracle %d", d2.Len(), mirror.Len())
			}
			ids := d2.LiveIDs()
			sort.Ints(ids)
			wantIDs := mirror.IDs()
			sort.Ints(wantIDs)
			if len(ids) != len(wantIDs) {
				t.Fatalf("LiveIDs %v, want %v", ids, wantIDs)
			}
			for i := range ids {
				if ids[i] != wantIDs[i] {
					t.Fatalf("LiveIDs %v, want %v", ids, wantIDs)
				}
			}
			for i := 0; i < 20; i++ {
				q := randomDataset(rng, 1)[0]
				k := 1 + rng.Intn(8)
				diffAssertTopK(t, "reopen", cfg.Measure, cfg.Params, mirror, q.Points, k, d2.Search(q.Points, k))
			}
			// Compact on the recovered handle folds the replayed delta
			// and checkpoints; a third open must land on the same state.
			if err := d2.Compact(); err != nil {
				t.Fatal(err)
			}
			if d2.DeltaLen() != 0 {
				t.Fatalf("delta %d after compact", d2.DeltaLen())
			}
			if err := d2.Close(); err != nil {
				t.Fatal(err)
			}
			d3, err := OpenDurable(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer d3.Close()
			if d3.Generation() != gen+1 || d3.Len() != mirror.Len() {
				t.Fatalf("post-compact reopen: gen %d len %d, want gen %d len %d",
					d3.Generation(), d3.Len(), gen+1, mirror.Len())
			}
		})
	}
}

// TestDurableOpenMissing: a directory that never held an index (or
// does not exist) fails with ErrNoDurable so callers can fall back to
// a rebuild or a peer snapshot.
func TestDurableOpenMissing(t *testing.T) {
	if _, err := OpenDurable(t.TempDir(), DurableOptions{}); !errors.Is(err, ErrNoDurable) {
		t.Fatalf("open of empty dir: %v, want ErrNoDurable", err)
	}
	fs := failpoint.New(9)
	if _, err := OpenDurable("nope", DurableOptions{VFS: fs}); !errors.Is(err, ErrNoDurable) {
		t.Fatalf("open of missing dir: %v, want ErrNoDurable", err)
	}
}

// TestDurablePoisonOnSyncFailure: a dropped-write storage failure
// rolls the mutation back, reports it, and poisons the handle
// read-only so no later acknowledgement can lie.
func TestDurablePoisonOnStorageFailure(t *testing.T) {
	fs := failpoint.New(11)
	rng := rand.New(rand.NewSource(11))
	ds := randomDataset(rng, 10)
	d, err := BuildDurable("part", durableCfg(t), ds, DurableOptions{VFS: fs})
	if err != nil {
		t.Fatal(err)
	}
	lenBefore, genBefore := d.Len(), d.Generation()
	fs.Crash() // every IO from here on fails
	if err := d.Insert(randomFresh(rng, 100, 1)...); err == nil {
		t.Fatal("insert with dead storage succeeded")
	} else if !errors.Is(err, ErrDurability) {
		t.Fatalf("insert error %v, want ErrDurability", err)
	}
	if d.Err() == nil {
		t.Fatal("handle not poisoned after storage failure")
	}
	if d.Len() != lenBefore || d.Generation() != genBefore {
		t.Fatalf("failed insert left state: len %d gen %d, want %d/%d",
			d.Len(), d.Generation(), lenBefore, genBefore)
	}
	// Every further mutation fails fast; deletes report zero.
	if err := d.Upsert(randomFresh(rng, ds[0].ID, 1)...); err == nil {
		t.Fatal("upsert on poisoned handle succeeded")
	}
	if n := d.Delete(ds[0].ID); n != 0 {
		t.Fatalf("delete on poisoned handle acknowledged %d", n)
	}
	if err := d.Compact(); err == nil {
		t.Fatal("compact on poisoned handle succeeded")
	}
	// Queries still serve the last acknowledged state.
	if got := d.Search(ds[0].Points, 1); len(got) == 0 {
		t.Fatal("poisoned handle stopped answering queries")
	}
	d.Close()
}

// TestDurableWrapRejectsForeignTypes: only the two index layouts can
// be made durable.
func TestDurableWrapRejectsForeignTypes(t *testing.T) {
	if _, err := WrapDurable("x", 42, DurableOptions{VFS: failpoint.New(1)}); err == nil {
		t.Fatal("WrapDurable(int) succeeded")
	}
}

// TestDurableCompactCheckpointTrimsWAL: the automatic checkpoint
// after Compact resets the log, so recovery replays nothing.
func TestDurableCompactCheckpointTrimsWAL(t *testing.T) {
	fs := failpoint.New(13)
	rng := rand.New(rand.NewSource(13))
	ds := randomDataset(rng, 12)
	d, err := BuildDurable("part", durableCfg(t), ds, DurableOptions{VFS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(randomFresh(rng, 500, 4)...); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := storage.Open("part", storage.Options{VFS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if gen := st.CheckpointGen(); gen != 2 {
		t.Fatalf("checkpoint generation %d, want 2 (insert + compact)", gen)
	}
	records := 0
	if err := st.Replay(func(storage.WALRecord) error { records++; return nil }); err != nil {
		t.Fatal(err)
	}
	if records != 0 {
		t.Fatalf("%d WAL records survived the checkpoint, want 0", records)
	}
}

// TestDurableConcurrentInsertCompactNoDeadlock regresses the WAL
// lock-order inversion end to end: an Insert's acknowledge fsync runs
// outside d.mu (group commit), so it can race the WAL reset inside a
// Compact-triggered checkpoint. With the inverted lock order that
// pairing deadlocked and hung every writer permanently; the watchdog
// turns a recurrence into a failure. Afterwards the store must still
// recover every acknowledged insert.
func TestDurableConcurrentInsertCompactNoDeadlock(t *testing.T) {
	base := leakcheck.Base()
	defer leakcheck.Settle(t, base)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(99))
	ds := randomDataset(rng, 10)
	d, err := BuildDurable(dir, durableCfg(t), ds, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each, compacts = 4, 50, 25
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + g)))
				for i := 0; i < each; i++ {
					if err := d.Insert(randomFresh(rng, 10_000+g*1_000+i, 1)...); err != nil {
						t.Errorf("writer %d insert %d: %v", g, i, err)
						return
					}
				}
			}(g)
		}
		for i := 0; i < compacts; i++ {
			if err := d.Compact(); err != nil {
				t.Errorf("Compact %d: %v", i, err)
				break
			}
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("deadlock: concurrent Insert and Compact hung (WAL Sync vs Reset lock order)")
	}
	wantLen, wantGen := d.Len(), d.Generation()
	if wantLen != len(ds)+writers*each {
		t.Fatalf("in-memory index holds %d trajectories, want %d", wantLen, len(ds)+writers*each)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after concurrent workload: %v", err)
	}
	defer re.Close()
	if re.Len() != wantLen || re.Generation() != wantGen {
		t.Fatalf("recovered len=%d gen=%d, want len=%d gen=%d",
			re.Len(), re.Generation(), wantLen, wantGen)
	}
}
