package rptrie

import (
	"fmt"
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/oracle"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// Randomized differential testing: for every measure and both
// layouts, seeded random datasets answer seeded random queries and
// the answers are pinned to internal/oracle — before any mutation,
// interleaved with random Insert/Delete/Upsert/Compact, and after a
// final compaction. Every failure message leads with the case seed,
// so a reported seed reproduces the exact dataset, queries, and
// mutation schedule.

const (
	diffDatasetsFull  = 10
	diffDatasetsShort = 3
	diffPreQueries    = 40 // queries before any mutation
	diffMutSteps      = 60 // mutation steps, querying every 2nd step
	diffPostQueries   = 40 // queries after the final compaction
)

// diffCasesPerDataset is the number of query/dataset cases one
// dataset contributes: with the full dataset count that is ≥ 1000
// cases per measure per layout.
const diffCasesPerDataset = diffPreQueries + diffMutSteps/2 + diffPostQueries

func TestDifferentialTrieVsOracle(t *testing.T) {
	datasets := diffDatasetsFull
	if testing.Short() {
		datasets = diffDatasetsShort
	}
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	for _, m := range dist.Measures() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			for _, layout := range dynLayouts {
				cases := 0
				for di := 0; di < datasets; di++ {
					seed := int64(0x5EED0 + 1000*int(m) + di)
					cases += runDifferentialCase(t, layout, m, p, region, seed)
				}
				if cases < 1000 && !testing.Short() {
					t.Fatalf("layout %s ran only %d cases, want ≥ 1000", layout, cases)
				}
			}
		})
	}
}

// runDifferentialCase runs one dataset's full script and returns the
// number of query cases it compared.
func runDifferentialCase(t *testing.T, layout string, m dist.Measure, p dist.Params, region geo.Rect, seed int64) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := grid.NewWithBits(region, 3+rng.Intn(3))
	if err != nil {
		t.Fatal(err)
	}
	ds := randomDataset(rng, 30+rng.Intn(30))
	var pivots []*geo.Trajectory
	if rng.Intn(2) == 0 && m.IsMetric() {
		pivots = pivot.Select(ds, 3, 5, m, p, seed)
	}
	cfg := Config{
		Measure:  m,
		Params:   p,
		Grid:     g,
		Pivots:   pivots,
		Optimize: rng.Intn(2) == 0 && m.OrderIndependent(),
	}
	idx := buildDyn(t, layout, cfg, ds)
	mirror := oracle.NewSet(ds)
	nextID := 1000
	cases := 0

	label := func(phase string, i int) string {
		return fmt.Sprintf("seed=%d layout=%s measure=%v %s[%d]", seed, layout, m, phase, i)
	}
	compare := func(ctx string) {
		q := randomDataset(rng, 1)[0]
		k := 1 + rng.Intn(12)
		diffAssertTopK(t, ctx, m, p, mirror, q.Points, k, idx.Search(q.Points, k))
		// Range queries: the pointer and compressed layouts support
		// them (Succinct does not), and both must match the oracle.
		if rs, ok := idx.(interface {
			SearchRadius(q []geo.Point, radius float64) []topk.Item
		}); ok && rng.Intn(4) == 0 {
			radius := 0.2 + rng.Float64()*3
			diffAssertRadius(t, ctx, m, p, mirror, q.Points, radius, rs.SearchRadius(q.Points, radius))
		}
		cases++
	}

	for i := 0; i < diffPreQueries; i++ {
		compare(label("pre", i))
	}
	for step := 0; step < diffMutSteps; step++ {
		switch r := rng.Intn(10); {
		case r < 4: // insert fresh
			n := 1 + rng.Intn(3)
			fresh := randomFresh(rng, nextID, n)
			nextID += n
			if err := idx.Insert(fresh...); err != nil {
				t.Fatalf("%s: insert: %v", label("mut", step), err)
			}
			mirror.Insert(fresh...)
		case r < 8: // delete random live ids
			ids := mirror.IDs()
			if len(ids) == 0 {
				continue
			}
			victims := []int{ids[rng.Intn(len(ids))]}
			if len(ids) > 1 && rng.Intn(2) == 0 {
				victims = append(victims, ids[rng.Intn(len(ids))])
			}
			got := idx.Delete(victims...)
			want := mirror.Delete(victims...)
			if got != want {
				t.Fatalf("%s: delete removed %d, oracle %d", label("mut", step), got, want)
			}
		case r < 9: // upsert an existing id with new points
			ids := mirror.IDs()
			if len(ids) == 0 {
				continue
			}
			repl := randomFresh(rng, ids[rng.Intn(len(ids))], 1)
			if err := idx.Upsert(repl...); err != nil {
				t.Fatalf("%s: upsert: %v", label("mut", step), err)
			}
			mirror.Insert(repl...)
		default: // compact mid-stream
			if err := idx.Compact(); err != nil {
				t.Fatalf("%s: compact: %v", label("mut", step), err)
			}
		}
		if step%2 == 1 {
			compare(label("mut", step))
		}
	}
	if err := idx.Compact(); err != nil {
		t.Fatalf("seed=%d: final compact: %v", seed, err)
	}
	if idx.DeltaLen() != 0 {
		t.Fatalf("seed=%d: delta %d after final compact", seed, idx.DeltaLen())
	}
	if idx.Len() != mirror.Len() {
		t.Fatalf("seed=%d: index holds %d live, oracle %d", seed, idx.Len(), mirror.Len())
	}
	for i := 0; i < diffPostQueries; i++ {
		compare(label("post", i))
	}
	return cases
}

// diffAssertTopK checks got against the oracle: same length, same
// distance profile, every reported distance exact for its id. Result
// sets may differ from the oracle inside tied-distance groups.
func diffAssertTopK(t *testing.T, ctx string, m dist.Measure, p dist.Params, mirror *oracle.Set, q []geo.Point, k int, got []topk.Item) {
	t.Helper()
	want := mirror.TopK(m, p, q, k)
	if len(got) != len(want) {
		t.Fatalf("%s k=%d: got %d results, want %d\ngot  %v\nwant %v", ctx, k, len(got), len(want), got, want)
	}
	seen := make(map[int]bool, len(got))
	for i := range got {
		if !close9(got[i].Dist, want[i].Dist) {
			t.Fatalf("%s k=%d: rank %d distance %v, oracle %v\ngot  %v\nwant %v",
				ctx, k, i, got[i].Dist, want[i].Dist, got, want)
		}
		if seen[got[i].ID] {
			t.Fatalf("%s: duplicate id %d in results %v", ctx, got[i].ID, got)
		}
		seen[got[i].ID] = true
		tr := mirror.Get(got[i].ID)
		if tr == nil {
			t.Fatalf("%s: result id %d is not live", ctx, got[i].ID)
		}
		if exact := dist.Distance(m, q, tr.Points, p); !close9(got[i].Dist, exact) {
			t.Fatalf("%s: id %d reported %v, true distance %v", ctx, got[i].ID, got[i].Dist, exact)
		}
	}
}

// diffAssertRadius checks a range answer id-for-id (no ties caveat:
// every in-range id must appear).
func diffAssertRadius(t *testing.T, ctx string, m dist.Measure, p dist.Params, mirror *oracle.Set, q []geo.Point, radius float64, got []topk.Item) {
	t.Helper()
	want := mirror.Radius(m, p, q, radius)
	if len(got) != len(want) {
		t.Fatalf("%s radius=%g: got %d hits, want %d\ngot  %v\nwant %v", ctx, radius, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].ID != want[i].ID || !close9(got[i].Dist, want[i].Dist) {
			t.Fatalf("%s radius=%g: rank %d %+v, oracle %+v", ctx, radius, i, got[i], want[i])
		}
	}
}
