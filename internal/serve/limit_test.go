package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestRateLimiterHardCap: maxClients is a hard cap. When the sweep
// finds every bucket too fresh to reclaim, the limiter must evict the
// least-recently-seen bucket rather than grow without bound — one
// spoofed client id per request must not leak memory.
func TestRateLimiterHardCap(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	clock := base
	l := newRateLimiter(1, 1, func() time.Time { return clock })
	l.maxClients = 8

	// 100 distinct clients, each 1ms apart — far inside the refill
	// window, so sweepLocked never frees anything and every admission
	// past the cap must go through evictOldestLocked.
	for i := 0; i < 100; i++ {
		clock = base.Add(time.Duration(i) * time.Millisecond)
		ok, _ := l.allow(fmt.Sprintf("client-%d", i))
		if !ok {
			t.Fatalf("fresh client %d must get its burst", i)
		}
		if n := len(l.clients); n > 8 {
			t.Fatalf("client map grew to %d past the cap of 8", n)
		}
	}
	if n := len(l.clients); n != 8 {
		t.Fatalf("client map holds %d buckets, want exactly 8", n)
	}
	// The survivors are the 8 newest; the oldest were evicted in
	// last-seen order.
	for i := 92; i < 100; i++ {
		if _, ok := l.clients[fmt.Sprintf("client-%d", i)]; !ok {
			t.Fatalf("recent client-%d was evicted before older buckets", i)
		}
	}
	if _, ok := l.clients["client-0"]; ok {
		t.Fatal("client-0 is the oldest bucket and must have been evicted")
	}

	// A returning evicted client restarts with a full burst — eviction
	// errs permissive, never punitive.
	if ok, _ := l.allow("client-0"); !ok {
		t.Fatal("evicted client must be re-admitted with a fresh burst")
	}

	// Once the clock passes the refill window, the sweep path reclaims
	// idle buckets and no eviction is needed.
	clock = clock.Add(2 * time.Second)
	if ok, _ := l.allow("client-new"); !ok {
		t.Fatal("post-sweep client must be admitted")
	}
	if n := len(l.clients); n != 1 {
		t.Fatalf("sweep left %d buckets, want 1 (only the new client)", n)
	}
}

// TestRateLimiterRefusalAndRefill pins the token-bucket arithmetic the
// cap logic sits on: a client that spends its burst is refused with a
// sensible wait hint and re-admitted after the refill.
func TestRateLimiterRefusalAndRefill(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	clock := base
	l := newRateLimiter(2, 2, func() time.Time { return clock })

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("request %d inside the burst must pass", i)
		}
	}
	ok, wait := l.allow("c")
	if ok {
		t.Fatal("burst exhausted: third request must be refused")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait hint %v outside (0, 1s] at 2 tokens/s", wait)
	}
	clock = clock.Add(600 * time.Millisecond) // refills 1.2 tokens
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("refilled bucket must admit again")
	}
}

// TestAdmissionGaugeStress: the queue-depth gauge is an atomic
// counter; under concurrent acquire/release with cancellations it must
// never go negative, never exceed the queue bound, and must return to
// zero when the storm passes.
func TestAdmissionGaugeStress(t *testing.T) {
	var m metrics
	const maxConcurrent, maxQueue = 2, 4
	a := newAdmission(maxConcurrent, maxQueue, &m)

	stop := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	gaugeErr := make(chan error, 1)
	go func() {
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d := m.queueDepth.Load(); d < 0 || d > maxQueue {
				select {
				case gaugeErr <- fmt.Errorf("queue depth gauge %d outside [0, %d]", d, maxQueue):
				default:
				}
				return
			}
			if act := m.active.Load(); act < 0 || act > maxConcurrent {
				select {
				case gaugeErr <- fmt.Errorf("active gauge %d outside [0, %d]", act, maxConcurrent):
				default:
				}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				// A third of the requests carry a deadline short enough
				// to fire while queued, exercising the ctx.Done branch
				// that must still decrement the gauge.
				if rng.Intn(3) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				if a.acquire(ctx) {
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
					a.release()
				}
				if cancel != nil {
					cancel()
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	watcher.Wait()
	select {
	case err := <-gaugeErr:
		t.Fatal(err)
	default:
	}

	if d := m.queueDepth.Load(); d != 0 {
		t.Fatalf("queue depth gauge %d after drain, want 0", d)
	}
	if act := m.active.Load(); act != 0 {
		t.Fatalf("active gauge %d after drain, want 0", act)
	}
	if len(a.tokens) != maxConcurrent {
		t.Fatalf("%d tokens in the pool after drain, want %d", len(a.tokens), maxConcurrent)
	}
}
