package serve

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sync/atomic"
	"time"
)

// latencyBucketsUS are the histogram bucket upper bounds in
// microseconds (log-spaced); the final implicit bucket is +Inf.
var latencyBucketsUS = [numBounds]int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000,
}

const numBounds = 15

// histogram is a fixed-bucket latency histogram safe for concurrent
// observers. It implements expvar.Var.
type histogram struct {
	counts [numBounds + 1]atomic.Int64
	count  atomic.Int64
	sumUS  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for i < len(latencyBucketsUS) && us > latencyBucketsUS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// quantile estimates the q-th latency quantile in microseconds by
// linear interpolation within the containing bucket.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	lo := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			if i < len(latencyBucketsUS) {
				lo = latencyBucketsUS[i]
			}
			continue
		}
		if float64(cum+n) >= rank {
			hi := int64(0)
			if i < len(latencyBucketsUS) {
				hi = latencyBucketsUS[i]
			} else {
				hi = 2 * lo // open-ended top bucket: extrapolate
			}
			frac := (rank - float64(cum)) / float64(n)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += n
		if i < len(latencyBucketsUS) {
			lo = latencyBucketsUS[i]
		}
	}
	return float64(lo)
}

// histSnapshot is the histogram's JSON shape.
type histSnapshot struct {
	Count    int64   `json:"count"`
	SumUS    int64   `json:"sum_us"`
	P50      float64 `json:"p50_us"`
	P90      float64 `json:"p90_us"`
	P99      float64 `json:"p99_us"`
	BoundsUS []int64 `json:"bucket_bounds_us"`
	Counts   []int64 `json:"bucket_counts"`
}

func (h *histogram) snapshot() histSnapshot {
	s := histSnapshot{
		Count:    h.count.Load(),
		SumUS:    h.sumUS.Load(),
		P50:      h.quantile(0.50),
		P90:      h.quantile(0.90),
		P99:      h.quantile(0.99),
		BoundsUS: latencyBucketsUS[:],
		Counts:   make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// String implements expvar.Var.
func (h *histogram) String() string {
	b, _ := json.Marshal(h.snapshot())
	return string(b)
}

// metrics is one Server's counter set. Counters are expvar.Int so
// they compose with the standard expvar machinery, but they live on
// the Server rather than the process-global registry: two servers in
// one process (tests, the A/B load generator) must not collide.
type metrics struct {
	searchRequests expvar.Int
	radiusRequests expvar.Int
	errors         expvar.Int

	rejectedRate     expvar.Int
	rejectedQueue    expvar.Int
	rejectedDraining expvar.Int

	cacheHits          expvar.Int
	cacheMisses        expvar.Int
	cacheInvalidations expvar.Int
	cacheEvictions     expvar.Int

	coalesced      expvar.Int
	batches        expvar.Int
	batchedQueries expvar.Int

	queueDepth atomic.Int64 // waiting for an admission slot
	active     atomic.Int64 // holding an admission slot

	searchLatency histogram
	radiusLatency histogram
}

// snapshot assembles the /metrics JSON document.
func (m *metrics) snapshot(cacheEntries int) map[string]any {
	queries := m.searchRequests.Value() + m.radiusRequests.Value()
	ratio := 0.0
	if queries > 0 {
		ratio = float64(m.coalesced.Value()) / float64(queries)
	}
	hitRatio := 0.0
	if lookups := m.cacheHits.Value() + m.cacheMisses.Value(); lookups > 0 {
		hitRatio = float64(m.cacheHits.Value()) / float64(lookups)
	}
	return map[string]any{
		"requests_search":     m.searchRequests.Value(),
		"requests_radius":     m.radiusRequests.Value(),
		"errors":              m.errors.Value(),
		"rejected_rate_limit": m.rejectedRate.Value(),
		"rejected_queue_full": m.rejectedQueue.Value(),
		"rejected_draining":   m.rejectedDraining.Value(),
		"queue_depth":         m.queueDepth.Load(),
		"active_workers":      m.active.Load(),
		"cache": map[string]any{
			"hits":          m.cacheHits.Value(),
			"misses":        m.cacheMisses.Value(),
			"invalidations": m.cacheInvalidations.Value(),
			"evictions":     m.cacheEvictions.Value(),
			"entries":       cacheEntries,
			"hit_ratio":     hitRatio,
		},
		"coalesce": map[string]any{
			"coalesced_requests": m.coalesced.Value(),
			"batches":            m.batches.Value(),
			"batched_queries":    m.batchedQueries.Value(),
			"ratio":              ratio,
		},
		"latency_us": map[string]any{
			"search": m.searchLatency.snapshot(),
			"radius": m.radiusLatency.snapshot(),
		},
	}
}

// serveMetrics writes the snapshot as indented JSON.
func (m *metrics) serveMetrics(w http.ResponseWriter, cacheEntries int, index map[string]any) {
	snap := m.snapshot(cacheEntries)
	snap["index"] = index
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
