package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repose"
	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/leakcheck"
	"repose/internal/oracle"
	"repose/internal/topk"
)

func stressData(n int) []*repose.Trajectory {
	return dataset.Generate(dataset.Spec{
		Name: "serve-stress", Cardinality: n, AvgLen: 15,
		SpanX: 4, SpanY: 4, Hotspots: 5, Seed: 11,
	})
}

func stressTraj(rng *rand.Rand, id int) *repose.Trajectory {
	pts := make([]repose.Point, 3+rng.Intn(10))
	for j := range pts {
		pts[j] = repose.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
	}
	return &repose.Trajectory{ID: id, Points: pts}
}

func postSearch(t *testing.T, url string, q *repose.Trajectory, k int) (answerJSON, int) {
	t.Helper()
	pts := make([][2]float64, len(q.Points))
	for i, p := range q.Points {
		pts[i] = [2]float64{p.X, p.Y}
	}
	body, _ := json.Marshal(map[string]any{"points": pts, "k": k})
	resp, err := http.Post(url+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /search: %v", err)
	}
	defer resp.Body.Close()
	var ans answerJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return ans, resp.StatusCode
}

func sameItems(got []resultJSON, want []topk.Item) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Distance != want[i].Dist {
			return false
		}
	}
	return true
}

// TestServeOracleStress is the serving layer's exactness proof under
// -race: concurrent HTTP queries race a mutation stream on a
// single-partition index (so the generation vector is a scalar and
// every reachable index state is a recorded post-mutation state).
// The mutator snapshots the brute-force oracle's answer set after
// every mutation, keyed by the generation it produced. Every served
// answer — cached, coalesced, batched, or fresh — must be
// bit-identical to the oracle at some generation between the
// answer's pinned floor (its reported generation vector) and the
// authoritative generation at response receipt. A served answer
// matching no such state is a stale or torn read and fails the test.
func TestServeOracleStress(t *testing.T) {
	base := leakcheck.Base()
	ds := stressData(160)
	idx, err := repose.Build(ds, repose.Options{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	gw := New(idx, Config{
		MaxConcurrent: 4,
		CacheEntries:  256,
		BatchWindow:   500 * time.Microsecond,
		QueryTimeout:  30 * time.Second,
	})
	ts := httptest.NewServer(gw.Handler())
	teardown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := gw.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		http.DefaultClient.CloseIdleConnections()
		ts.Close()
	}
	defer teardown()

	const k = 5
	queries := []*repose.Trajectory{ds[3], ds[47], ds[91]}

	// The oracle ledger: after every mutation, the answer for each
	// probe query at the generation that mutation produced. Hausdorff
	// (the build default) ignores Params, so the zero value is exact.
	type state struct{ answers [][]topk.Item }
	var (
		ledgerMu sync.Mutex
		ledger   = make(map[uint64]state)
		latest   uint64
	)
	mirror := oracle.NewSet(ds)
	snapshot := func(gen uint64) {
		s := state{answers: make([][]topk.Item, len(queries))}
		for i, q := range queries {
			s.answers[i] = mirror.TopK(dist.Hausdorff, dist.Params{}, q.Points, k)
		}
		ledgerMu.Lock()
		ledger[gen] = s
		if gen > latest {
			latest = gen
		}
		ledgerMu.Unlock()
	}
	snapshot(idx.Generations()[0])

	ctx := context.Background()
	stopMut := make(chan struct{})
	mutDone := make(chan error, 1)
	go func() {
		rng := rand.New(rand.NewSource(77))
		nextID := 1 << 20
		var inserted []int
		for i := 0; ; i++ {
			select {
			case <-stopMut:
				mutDone <- nil
				return
			default:
			}
			if len(inserted) > 0 && rng.Intn(3) == 0 {
				id := inserted[rng.Intn(len(inserted))]
				if _, err := idx.Delete(ctx, []int{id}); err != nil {
					mutDone <- fmt.Errorf("delete: %w", err)
					return
				}
				mirror.Delete(id)
			} else {
				tr := stressTraj(rng, nextID)
				nextID++
				if err := idx.Insert(ctx, []*repose.Trajectory{tr}); err != nil {
					mutDone <- fmt.Errorf("insert: %w", err)
					return
				}
				inserted = append(inserted, tr.ID)
				mirror.Insert(tr)
			}
			// The mutation is acknowledged: record the oracle state
			// under the generation it produced. A query can observe
			// this generation between the mutation's return and this
			// snapshot; verifiers wait for the ledger to catch up.
			snapshot(idx.Generations()[0])
			time.Sleep(500 * time.Microsecond)
		}
	}()

	const queriers = 4
	const perQuerier = 60
	var wg sync.WaitGroup
	errCh := make(chan error, queriers)
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			for i := 0; i < perQuerier; i++ {
				qi := rng.Intn(len(queries))
				ans, status := postSearch(t, ts.URL, queries[qi], k)
				if status != http.StatusOK {
					errCh <- fmt.Errorf("querier %d: status %d", w, status)
					return
				}
				if len(ans.Generations) != 1 {
					errCh <- fmt.Errorf("querier %d: generation vector %v, want length 1", w, ans.Generations)
					return
				}
				floor := ans.Generations[0]
				// The answer reflects a state no newer than the
				// authoritative generation right now.
				ceil := idx.Generations()[0]

				// Wait for the ledger to cover [floor, ceil]: the
				// mutator records each generation promptly after the
				// mutation returns.
				deadline := time.Now().Add(5 * time.Second)
				matched := false
				for {
					ledgerMu.Lock()
					covered := latest >= ceil
					for g := floor; g <= ceil; g++ {
						if s, ok := ledger[g]; ok && sameItems(ans.Results, s.answers[qi]) {
							matched = true
							break
						}
					}
					ledgerMu.Unlock()
					if matched || covered || time.Now().After(deadline) {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if !matched {
					errCh <- fmt.Errorf("querier %d: answer %v for query %d matches no oracle state in generations [%d, %d] (cached=%v coalesced=%v)",
						w, ans.Results, qi, floor, ceil, ans.Cached, ans.Coalesced)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopMut)
	if err := <-mutDone; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Quiesced: the next answer must match the final oracle state
	// exactly, and an immediate repeat must come from the cache.
	for qi, q := range queries {
		want := mirror.TopK(dist.Hausdorff, dist.Params{}, q.Points, k)
		ans, status := postSearch(t, ts.URL, q, k)
		if status != http.StatusOK {
			t.Fatalf("quiesced query %d: status %d", qi, status)
		}
		if !sameItems(ans.Results, want) {
			t.Fatalf("quiesced query %d: %v, oracle %v", qi, ans.Results, want)
		}
		again, _ := postSearch(t, ts.URL, q, k)
		if !again.Cached {
			t.Errorf("quiesced repeat %d not cached", qi)
		}
		if !sameItems(again.Results, want) {
			t.Fatalf("cached repeat %d: %v, oracle %v", qi, again.Results, want)
		}
	}

	hits := gw.m.cacheHits.Value()
	coal := gw.m.coalesced.Value()
	t.Logf("stress: %d requests, %d cache hits, %d coalesced, %d ledger states",
		gw.m.searchRequests.Value(), hits, coal, len(ledger))
	teardown()
	leakcheck.Settle(t, base)
}

// TestServeMultiPartitionPhased drives a 3-partition index through
// quiesced mutate→query phases over HTTP: after every phase the
// served answer must equal the oracle exactly, the response's
// generation vector must equal the authoritative one, a repeat must
// hit the cache, and the next mutation must invalidate it.
func TestServeMultiPartitionPhased(t *testing.T) {
	ds := stressData(120)
	idx, err := repose.Build(ds, repose.Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	gw := New(idx, Config{MaxConcurrent: 4, CacheEntries: 64, BatchWindow: -1})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	defer gw.Shutdown(context.Background())

	mirror := oracle.NewSet(ds)
	q := ds[9]
	const k = 7
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))

	for phase := 0; phase < 6; phase++ {
		switch phase % 3 {
		case 0:
			tr := stressTraj(rng, 2<<20+phase)
			if err := idx.Insert(ctx, []*repose.Trajectory{tr}); err != nil {
				t.Fatal(err)
			}
			mirror.Insert(tr)
		case 1:
			id := mirror.IDs()[rng.Intn(mirror.Len())]
			if _, err := idx.Delete(ctx, []int{id}); err != nil {
				t.Fatal(err)
			}
			mirror.Delete(id)
		case 2:
			if err := idx.CompactNow(ctx); err != nil {
				t.Fatal(err)
			}
		}

		want := mirror.TopK(dist.Hausdorff, dist.Params{}, q.Points, k)
		ans, status := postSearch(t, ts.URL, q, k)
		if status != http.StatusOK {
			t.Fatalf("phase %d: status %d", phase, status)
		}
		if ans.Cached {
			t.Fatalf("phase %d: first post-mutation answer served from cache", phase)
		}
		if !sameItems(ans.Results, want) {
			t.Fatalf("phase %d: answer %v, oracle %v", phase, ans.Results, want)
		}
		if !equalU64(ans.Generations, idx.Generations()) {
			t.Fatalf("phase %d: generations %v, authoritative %v", phase, ans.Generations, idx.Generations())
		}
		again, _ := postSearch(t, ts.URL, q, k)
		if !again.Cached || !sameItems(again.Results, want) {
			t.Fatalf("phase %d: repeat cached=%v results=%v, want cached copy of %v", phase, again.Cached, again.Results, want)
		}
	}
	// Each mutate phase after the first evicted the prior entry.
	if inv := gw.m.cacheInvalidations.Value(); inv < 4 {
		t.Errorf("invalidations = %d, want >= 4 (one per state change after the first)", inv)
	}
}
