package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repose"
)

// Backend is the slice of *repose.Index the gateway needs; narrowed
// to an interface so tests can substitute instrumented fakes.
type Backend interface {
	Search(ctx context.Context, q *repose.Trajectory, k int, opts ...repose.QueryOption) ([]repose.Result, error)
	SearchSub(ctx context.Context, q *repose.Trajectory, k int, opts ...repose.QueryOption) ([]repose.Result, error)
	SearchRadius(ctx context.Context, q *repose.Trajectory, radius float64, opts ...repose.QueryOption) ([]repose.Result, error)
	SearchBatch(ctx context.Context, qs []*repose.Trajectory, k int, opts ...repose.QueryOption) ([][]repose.Result, error)
	Generations() []uint64
	Health() []repose.WorkerHealth
	Stats() repose.Stats
}

// Config tunes the gateway. The zero value is usable: every field
// has a serving-appropriate default applied by New.
type Config struct {
	// MaxConcurrent bounds queries executing in the engine at once
	// (admission tokens). Default 2×NumCPU.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an admission token; one
	// more is rejected with 429 + Retry-After. Default 4×MaxConcurrent.
	MaxQueue int

	// RatePerClient is the sustained per-client request rate
	// (tokens/second); 0 disables rate limiting. Default 0.
	RatePerClient float64
	// Burst is the token-bucket depth when rate limiting is on.
	// Default 2×ceil(RatePerClient), minimum 1.
	Burst int

	// CacheEntries caps the answer cache across all shards; 0 means
	// the default 4096, negative disables caching. CacheShards is
	// rounded up to a power of two; default 16.
	CacheEntries int
	CacheShards  int

	// BatchWindow is how long the first top-k arrival waits for
	// ride-alongs before its micro-batch dispatches; 0 means the
	// default 2ms, negative disables batching (every query runs
	// solo). MaxBatch dispatches a window early once that many
	// queries are waiting; default 32.
	BatchWindow time.Duration
	MaxBatch    int

	// MaxK rejects unreasonable k values (400); default 1000.
	// DefaultK applies when a search request omits k; default 10.
	MaxK     int
	DefaultK int

	// QueryTimeout bounds each engine call, independent of the client
	// connection (coalesced followers share the leader's call).
	// Default 30s.
	QueryTimeout time.Duration

	// now is the rate limiter's clock; tests inject a manual one.
	now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.NumCPU()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.Burst <= 0 {
		c.Burst = int(2 * c.RatePerClient)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Server is the HTTP gateway. Create with New, mount via Handler,
// stop with Shutdown.
type Server struct {
	be  Backend
	cfg Config
	m   metrics

	adm     *admission
	limiter *rateLimiter
	cache   *answerCache
	flights *flightGroup
	batch   *batcher

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	mux *http.ServeMux
}

// New builds a Server over be. The returned server owns background
// work (micro-batch dispatches); call Shutdown to release it.
func New(be Backend, cfg Config) *Server {
	cfg.applyDefaults()
	s := &Server{be: be, cfg: cfg}
	s.adm = newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, &s.m)
	s.limiter = newRateLimiter(cfg.RatePerClient, cfg.Burst, cfg.now)
	s.cache = newCache(cfg.CacheEntries, cfg.CacheShards, &s.m)
	s.flights = newFlightGroup()
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	if cfg.BatchWindow > 0 {
		s.batch = newBatcher(be, cfg.BatchWindow, cfg.MaxBatch, s.baseCtx, cfg.QueryTimeout, &s.m)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/search", method(http.MethodPost, s.handleSearch))
	s.mux.HandleFunc("/radius", method(http.MethodPost, s.handleRadius))
	s.mux.HandleFunc("/healthz", method(http.MethodGet, s.handleHealthz))
	s.mux.HandleFunc("/metrics", method(http.MethodGet, s.handleMetrics))
	return s
}

// method gates a handler on one HTTP method. (The go.mod go
// directive predates 1.22's ServeMux method patterns.)
func method(m string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != m {
			w.Header().Set("Allow", m)
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		h(w, r)
	}
}

// Handler returns the gateway's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: new query requests get 503, in-flight
// requests (and the micro-batches they ride in) run to completion,
// bounded by ctx. Afterwards the base context is cancelled so nothing
// can start engine work through this server again.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		if s.batch != nil {
			s.batch.drain()
		}
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.cancelBase()
	return err
}

// enter registers a query request with the drain protocol. ok=false
// means the server is draining and the request must be rejected; on
// ok the caller must call the returned leave func.
func (s *Server) enter() (leave func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	s.inflight.Add(1)
	return s.inflight.Done, true
}

// Request/response wire shapes.

// timeWindowJSON restricts a query to trajectories with a sample
// timestamped inside the closed window [From, To]; only the in-window
// run is scored. See repose.WithTimeWindow.
type timeWindowJSON struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

type searchRequest struct {
	Points [][2]float64 `json:"points"`
	K      int          `json:"k"`
	// Sub switches to subtrajectory search: each candidate is scored
	// by its best-matching contiguous segment, and results carry the
	// matched [start, end) sample range. MinSeg/MaxSeg bound the
	// segment length (0 = unbounded).
	Sub    bool `json:"sub"`
	MinSeg int  `json:"min_seg"`
	MaxSeg int  `json:"max_seg"`
	// Window, when present, time-restricts the query.
	Window *timeWindowJSON `json:"window"`
}

type radiusRequest struct {
	Points [][2]float64    `json:"points"`
	Radius float64         `json:"radius"`
	Window *timeWindowJSON `json:"window"`
}

type resultJSON struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
	// Start/End name the matched half-open sample range of a
	// subtrajectory hit; omitted for whole-trajectory answers.
	Start int `json:"start,omitempty"`
	End   int `json:"end,omitempty"`
}

type answerJSON struct {
	Results     []resultJSON `json:"results"`
	Generations []uint64     `json:"generations"`
	Cached      bool         `json:"cached"`
	Coalesced   bool         `json:"coalesced"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// clientKey identifies a client for rate limiting: the X-Client-ID
// header when present, else the remote address's host part.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func decodePoints(raw [][2]float64) ([]repose.Point, error) {
	if len(raw) == 0 {
		return nil, errors.New("empty query: need at least one point")
	}
	pts := make([]repose.Point, len(raw))
	for i, p := range raw {
		pts[i] = repose.Point{X: p[0], Y: p[1]}
	}
	return pts, nil
}

// gate runs the request-independent front half shared by /search and
// /radius: rate limit, then the drain check. It writes the rejection
// itself and returns ok=false if the request is not to proceed.
func (s *Server) gate(w http.ResponseWriter, r *http.Request) (leave func(), ok bool) {
	if allowed, wait := s.limiter.allow(clientKey(r)); !allowed {
		s.m.rejectedRate.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(wait/time.Second)+1))
		writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return nil, false
	}
	leave, ok = s.enter()
	if !ok {
		s.m.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return nil, false
	}
	return leave, true
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	leave, ok := s.gate(w, r)
	if !ok {
		return
	}
	defer leave()
	start := time.Now()
	s.m.searchRequests.Add(1)

	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.K == 0 {
		req.K = s.cfg.DefaultK
	}
	if req.K < 0 || req.K > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest, "k out of range [1,%d]", s.cfg.MaxK)
		return
	}
	pts, err := decodePoints(req.Points)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	q := query{kind: kindTopK, k: req.K, pts: pts, sub: req.Sub, minSeg: req.MinSeg, maxSeg: req.MaxSeg}
	if req.Window != nil {
		q.window, q.from, q.to = true, req.Window.From, req.Window.To
	}
	q.sig = q.signature()
	s.answer(w, r, q, start, &s.m.searchLatency, func(ctx context.Context) ([]repose.Result, error) {
		// Refined queries run solo: the micro-batcher coalesces only
		// plain whole-trajectory top-k work.
		if s.batch != nil && q.batchable() {
			return s.batch.search(ctx, pts, req.K)
		}
		tr := &repose.Trajectory{Points: pts}
		var opts []repose.QueryOption
		if q.window {
			opts = append(opts, repose.WithTimeWindow(q.from, q.to))
		}
		if q.sub {
			opts = append(opts, repose.WithSegmentLength(q.minSeg, q.maxSeg))
			return s.be.SearchSub(ctx, tr, req.K, opts...)
		}
		return s.be.Search(ctx, tr, req.K, opts...)
	})
}

func (s *Server) handleRadius(w http.ResponseWriter, r *http.Request) {
	leave, ok := s.gate(w, r)
	if !ok {
		return
	}
	defer leave()
	start := time.Now()
	s.m.radiusRequests.Add(1)

	var req radiusRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Radius < 0 {
		writeError(w, http.StatusBadRequest, "radius must be >= 0")
		return
	}
	pts, err := decodePoints(req.Points)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	q := query{kind: kindRadius, radius: req.Radius, pts: pts}
	if req.Window != nil {
		q.window, q.from, q.to = true, req.Window.From, req.Window.To
	}
	q.sig = q.signature()
	s.answer(w, r, q, start, &s.m.radiusLatency, func(ctx context.Context) ([]repose.Result, error) {
		var opts []repose.QueryOption
		if q.window {
			opts = append(opts, repose.WithTimeWindow(q.from, q.to))
		}
		return s.be.SearchRadius(ctx, &repose.Trajectory{Points: pts}, req.Radius, opts...)
	})
}

// answer drives a parsed query through cache → coalescing →
// admission → execution and writes the response. exec runs the
// engine call; it receives a context detached from the client
// connection (coalesced followers and batch members share it).
func (s *Server) answer(w http.ResponseWriter, r *http.Request, q query, start time.Time, lat *histogram, exec func(context.Context) ([]repose.Result, error)) {
	// Read the generation vector BEFORE the cache lookup: the hit
	// condition is exact equality with the entry's vector, which is
	// what makes stale answers unreachable (see doc.go).
	gens := s.be.Generations()
	if items, ok := s.cache.get(q, gens); ok {
		lat.observe(time.Since(start))
		s.respond(w, items, gens, true, false)
		return
	}

	genHash := hashGens(gens)
	c, leader, shared := s.flights.join(q, gens, genHash)
	if shared && !leader {
		// Follower: the identical query is already executing under
		// the same generation vector — wait for the leader's answer.
		s.m.coalesced.Add(1)
		select {
		case <-c.done:
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable, "client cancelled")
			return
		}
		if c.err != nil {
			s.m.errors.Add(1)
			writeError(w, http.StatusInternalServerError, "%v", c.err)
			return
		}
		lat.observe(time.Since(start))
		s.respond(w, c.items, gens, false, true)
		return
	}

	// Leader (or unshared on flight-key collision): pay admission.
	if !s.adm.acquire(r.Context()) {
		if leader {
			s.flights.complete(c, genHash, nil, errors.New("rejected: server overloaded"))
		}
		s.m.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.adm.retryAfter()/time.Second)+1))
		writeError(w, http.StatusTooManyRequests, "queue full")
		return
	}

	// Execute on the server's base context so a leader's client
	// disconnecting cannot kill work its followers share.
	ctx := s.baseCtx
	if s.batch == nil || !q.batchable() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	items, err := exec(ctx)
	s.adm.release()

	if leader {
		s.flights.complete(c, genHash, items, err)
	}
	if err != nil {
		s.m.errors.Add(1)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.cache.put(q, gens, items)
	lat.observe(time.Since(start))
	s.respond(w, items, gens, false, false)
}

func (s *Server) respond(w http.ResponseWriter, items []repose.Result, gens []uint64, cached, coalesced bool) {
	res := make([]resultJSON, len(items))
	for i, it := range items {
		res[i] = resultJSON{ID: it.ID, Distance: it.Dist, Start: it.Start, End: it.End}
	}
	writeJSON(w, http.StatusOK, answerJSON{
		Results:     res,
		Generations: gens,
		Cached:      cached,
		Coalesced:   coalesced,
	})
}

// handleHealthz reports 200 when every worker is serving and the
// server is accepting queries, 503 otherwise — the shape load
// balancers expect.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()

	health := s.be.Health()
	degraded := draining
	workers := make([]map[string]any, len(health))
	for i, h := range health {
		if h.Down {
			degraded = true
		}
		workers[i] = map[string]any{
			"addr":        h.Addr,
			"down":        h.Down,
			"stale_parts": h.StaleParts,
		}
	}
	status := http.StatusOK
	state := "ok"
	if degraded {
		status = http.StatusServiceUnavailable
		state = "degraded"
		if draining {
			state = "draining"
		}
	}
	writeJSON(w, status, map[string]any{"status": state, "workers": workers})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.be.Stats()
	index := map[string]any{
		"trajectories":          st.Trajectories,
		"partitions":            st.Partitions,
		"generations":           st.Generations,
		"layout":                st.Layout.String(),
		"index_bytes":           st.IndexBytes,
		"partition_index_bytes": st.PartitionIndexBytes,
	}
	if len(st.PartitionLoads) > 0 {
		loads := make([]map[string]any, len(st.PartitionLoads))
		for i, pl := range st.PartitionLoads {
			loads[i] = map[string]any{
				"partition":     pl.Partition,
				"queries":       pl.Queries,
				"refine_ops":    pl.RefineOps,
				"total_time_us": pl.TotalTime.Microseconds(),
				"p99_us":        pl.P99.Microseconds(),
				"score":         probeScoreJSON(pl.Score),
			}
		}
		index["partition_loads"] = loads
	}
	s.m.serveMetrics(w, s.cache.len(), index)
}

// probeScoreJSON maps a never-probed partition's +Inf score to nil —
// JSON has no infinity, and encoding/json errors on one.
func probeScoreJSON(score float64) any {
	if math.IsInf(score, 0) || math.IsNaN(score) {
		return nil
	}
	return score
}
