package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repose"
	"repose/internal/leakcheck"
)

// fakeBackend is an instrumented Backend for unit tests: canned
// results, a controllable generation vector, and an optional gate
// that blocks Search until released.
type fakeBackend struct {
	mu      sync.Mutex
	gens    []uint64
	healthy []repose.WorkerHealth

	searchCalls atomic.Int64
	subCalls    atomic.Int64
	radiusCalls atomic.Int64
	batchCalls  atomic.Int64

	entered chan struct{} // receives one token per Search/SearchBatch entry
	gate    chan struct{} // when non-nil, Search blocks until closed
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		gens:    []uint64{1, 2},
		healthy: []repose.WorkerHealth{{Addr: "local"}},
		entered: make(chan struct{}, 128),
	}
}

func (f *fakeBackend) result(q *repose.Trajectory) []repose.Result {
	// Derive a per-query result so tests can tell answers apart.
	return []repose.Result{{ID: len(q.Points), Dist: q.Points[0].X}}
}

func (f *fakeBackend) Search(ctx context.Context, q *repose.Trajectory, k int, opts ...repose.QueryOption) ([]repose.Result, error) {
	f.searchCalls.Add(1)
	f.entered <- struct{}{}
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return f.result(q), nil
}

func (f *fakeBackend) SearchSub(ctx context.Context, q *repose.Trajectory, k int, opts ...repose.QueryOption) ([]repose.Result, error) {
	f.subCalls.Add(1)
	f.entered <- struct{}{}
	// Segment answers carry a matched range, unlike whole-trajectory
	// ones — lets tests assert the start/end passthrough.
	res := f.result(q)
	for i := range res {
		res[i].Start, res[i].End = 1, 3
	}
	return res, nil
}

func (f *fakeBackend) SearchRadius(ctx context.Context, q *repose.Trajectory, radius float64, opts ...repose.QueryOption) ([]repose.Result, error) {
	f.radiusCalls.Add(1)
	return f.result(q), nil
}

func (f *fakeBackend) SearchBatch(ctx context.Context, qs []*repose.Trajectory, k int, opts ...repose.QueryOption) ([][]repose.Result, error) {
	f.batchCalls.Add(1)
	f.entered <- struct{}{}
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([][]repose.Result, len(qs))
	for i, q := range qs {
		out[i] = f.result(q)
	}
	return out, nil
}

func (f *fakeBackend) Generations() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint64(nil), f.gens...)
}

func (f *fakeBackend) bumpGen() {
	f.mu.Lock()
	f.gens[0]++
	f.mu.Unlock()
}

func (f *fakeBackend) Health() []repose.WorkerHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]repose.WorkerHealth(nil), f.healthy...)
}

func (f *fakeBackend) Stats() repose.Stats {
	per := make([]int, len(f.gens))
	for i := range per {
		per[i] = 1024
	}
	return repose.Stats{
		Trajectories:        1,
		Partitions:          len(f.gens),
		IndexBytes:          1024 * len(f.gens),
		PartitionIndexBytes: per,
		Generations:         f.Generations(),
	}
}

// noBatch disables micro-batching and caching so tests exercise one
// layer at a time.
func bareConfig() Config {
	return Config{
		MaxConcurrent: 8,
		CacheEntries:  -1,
		BatchWindow:   -1,
	}
}

func searchReq(ts *httptest.Server, x float64, n, k int, hdr map[string]string) (*http.Response, answerJSON, error) {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{x, float64(i)}
	}
	body, _ := json.Marshal(map[string]any{"points": pts, "k": k})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", bytes.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, answerJSON{}, err
	}
	defer resp.Body.Close()
	var ans answerJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
			return resp, ans, err
		}
	}
	return resp, ans, nil
}

func newTestServer(t *testing.T, be Backend, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(be, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// TestAdmissionRejection pins the queue-depth rejection contract:
// with one worker slot and a one-deep queue, a third concurrent
// request is rejected immediately with 429 + Retry-After, and the
// queued request completes once the slot frees.
func TestAdmissionRejection(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	cfg := bareConfig()
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 1
	s, ts := newTestServer(t, be, cfg)

	type outcome struct {
		status int
		err    error
	}
	results := make(chan outcome, 2)
	issue := func(x float64) {
		resp, _, err := searchReq(ts, x, 3, 2, nil)
		if err != nil {
			results <- outcome{0, err}
			return
		}
		results <- outcome{resp.StatusCode, nil}
	}

	go issue(1) // takes the slot and blocks in the backend
	<-be.entered
	go issue(2) // distinct query: occupies the queue position
	// Wait until the second request is actually queued.
	for i := 0; ; i++ {
		if s.m.queueDepth.Load() == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _, err := searchReq(ts, 3, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if got := s.m.rejectedQueue.Value(); got != 1 {
		t.Errorf("rejectedQueue = %d, want 1", got)
	}

	close(be.gate)
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.status != http.StatusOK {
			t.Errorf("admitted request: status %d, want 200", o.status)
		}
	}
}

// TestRateLimit pins the token-bucket contract under a manual clock:
// burst requests pass, the next is rejected with Retry-After, a
// second's worth of refill admits exactly one more, and clients are
// isolated from each other.
func TestRateLimit(t *testing.T) {
	be := newFakeBackend()
	cfg := bareConfig()
	cfg.RatePerClient = 1
	cfg.Burst = 2
	var clock atomic.Int64 // seconds
	cfg.now = func() time.Time {
		return time.Unix(1_000_000+clock.Load(), 0)
	}
	s, ts := newTestServer(t, be, cfg)

	alice := map[string]string{"X-Client-ID": "alice"}
	for i := 0; i < 2; i++ {
		resp, _, err := searchReq(ts, 1, 3, 2, alice)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp, _, err := searchReq(ts, 1, 3, 2, alice)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.m.rejectedRate.Value(); got != 1 {
		t.Errorf("rejectedRate = %d, want 1", got)
	}

	// A different client has its own bucket.
	resp, _, err = searchReq(ts, 1, 3, 2, map[string]string{"X-Client-ID": "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other client: status %d, want 200", resp.StatusCode)
	}

	// One second refills one token for alice — exactly one request.
	clock.Add(1)
	for i, want := range []int{http.StatusOK, http.StatusTooManyRequests} {
		resp, _, err := searchReq(ts, 1, 3, 2, alice)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != want {
			t.Fatalf("post-refill request %d: status %d, want %d", i, resp.StatusCode, want)
		}
	}
}

// TestCacheHitAndInvalidation pins the generation-keyed cache: an
// identical repeat is served from cache without touching the engine,
// and a generation bump makes the entry unreachable (counted as an
// invalidation) so the next request recomputes.
func TestCacheHitAndInvalidation(t *testing.T) {
	be := newFakeBackend()
	cfg := bareConfig()
	cfg.CacheEntries = 64
	s, ts := newTestServer(t, be, cfg)

	_, ans, err := searchReq(ts, 1, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Cached {
		t.Error("first request reported cached")
	}
	if want := []uint64{1, 2}; !equalU64(ans.Generations, want) {
		t.Errorf("generations = %v, want %v", ans.Generations, want)
	}

	_, ans2, err := searchReq(ts, 1, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ans2.Cached {
		t.Error("identical repeat not served from cache")
	}
	if got := be.searchCalls.Load(); got != 1 {
		t.Errorf("engine calls after cached repeat = %d, want 1", got)
	}
	if len(ans2.Results) != len(ans.Results) || ans2.Results[0] != ans.Results[0] {
		t.Errorf("cached answer %v differs from original %v", ans2.Results, ans.Results)
	}

	be.bumpGen() // a mutation: the old vector can never be read again
	_, ans3, err := searchReq(ts, 1, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans3.Cached {
		t.Error("request after generation bump served stale cache entry")
	}
	if want := []uint64{2, 2}; !equalU64(ans3.Generations, want) {
		t.Errorf("post-bump generations = %v, want %v", ans3.Generations, want)
	}
	if got := s.m.cacheInvalidations.Value(); got != 1 {
		t.Errorf("cacheInvalidations = %d, want 1", got)
	}
	if got := be.searchCalls.Load(); got != 2 {
		t.Errorf("engine calls after invalidation = %d, want 2", got)
	}
}

// postJSON posts an arbitrary request body to path and decodes the
// answer; refined-query tests build bodies searchReq can't express.
func postJSON(ts *httptest.Server, path string, body map[string]any) (*http.Response, answerJSON, error) {
	raw, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, answerJSON{}, err
	}
	defer resp.Body.Close()
	var ans answerJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
			return resp, ans, err
		}
	}
	return resp, ans, nil
}

// TestRefinedRoutingAndCacheKey pins the gateway's handling of the
// refined query modes: a sub request routes to Backend.SearchSub and
// its matched [start, end) range survives into the JSON answer; the
// cache keys on every refined dimension (same points under a
// different mode or window must miss, an identical refined repeat
// must hit); and a windowed radius request still reaches
// SearchRadius.
func TestRefinedRoutingAndCacheKey(t *testing.T) {
	be := newFakeBackend()
	cfg := bareConfig()
	cfg.CacheEntries = 64
	_, ts := newTestServer(t, be, cfg)

	pts := [][2]float64{{1, 0}, {1, 1}, {1, 2}}

	// Plain top-k first: occupies a cache entry for these points.
	if _, ans, err := postJSON(ts, "/search", map[string]any{"points": pts, "k": 2}); err != nil {
		t.Fatal(err)
	} else if ans.Cached {
		t.Error("first plain request reported cached")
	}

	// Same points as a subtrajectory query: must miss the plain
	// entry, route to SearchSub, and carry the matched range through.
	_, sub, err := postJSON(ts, "/search", map[string]any{"points": pts, "k": 2, "sub": true, "min_seg": 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Cached {
		t.Error("sub request hit the plain query's cache entry")
	}
	if got := be.subCalls.Load(); got != 1 {
		t.Errorf("SearchSub calls = %d, want 1", got)
	}
	if len(sub.Results) == 0 || sub.Results[0].Start != 1 || sub.Results[0].End != 3 {
		t.Errorf("sub results %v missing matched range [1, 3)", sub.Results)
	}

	// Identical refined repeat: served from cache, no new engine call.
	if _, again, err := postJSON(ts, "/search", map[string]any{"points": pts, "k": 2, "sub": true, "min_seg": 2}); err != nil {
		t.Fatal(err)
	} else if !again.Cached {
		t.Error("identical sub repeat not served from cache")
	}
	if got := be.subCalls.Load(); got != 1 {
		t.Errorf("SearchSub calls after cached repeat = %d, want 1", got)
	}

	// Varying any refined dimension is a different query: a changed
	// segment bound, a time window, and a shifted window each miss.
	for _, body := range []map[string]any{
		{"points": pts, "k": 2, "sub": true, "min_seg": 3},
		{"points": pts, "k": 2, "sub": true, "min_seg": 2, "window": map[string]int64{"from": 100, "to": 200}},
		{"points": pts, "k": 2, "sub": true, "min_seg": 2, "window": map[string]int64{"from": 100, "to": 300}},
		{"points": pts, "k": 2, "window": map[string]int64{"from": 100, "to": 200}},
	} {
		if _, ans, err := postJSON(ts, "/search", body); err != nil {
			t.Fatal(err)
		} else if ans.Cached {
			t.Errorf("request %v hit another mode's cache entry", body)
		}
	}
	// The windowed-but-not-sub variant is whole-trajectory: Search,
	// not SearchSub, with the window carried in options.
	if sub, whole := be.subCalls.Load(), be.searchCalls.Load(); sub != 4 || whole != 2 {
		t.Errorf("calls = (sub %d, whole %d), want (4, 2)", sub, whole)
	}

	// Windowed radius passes through to SearchRadius.
	if _, ans, err := postJSON(ts, "/radius", map[string]any{
		"points": pts, "radius": 0.5, "window": map[string]int64{"from": 100, "to": 200},
	}); err != nil {
		t.Fatal(err)
	} else if ans.Cached {
		t.Error("first windowed radius request reported cached")
	}
	if got := be.radiusCalls.Load(); got != 1 {
		t.Errorf("SearchRadius calls = %d, want 1", got)
	}
}

// TestCoalescing pins singleflight: concurrent identical queries
// share one engine execution, followers report coalesced and receive
// the leader's exact answer.
func TestCoalescing(t *testing.T) {
	be := newFakeBackend()
	be.gate = make(chan struct{})
	s, ts := newTestServer(t, be, bareConfig())

	const followers = 4
	var wg sync.WaitGroup
	answers := make(chan answerJSON, followers+1)
	issue := func() {
		defer wg.Done()
		resp, ans, err := searchReq(ts, 7, 4, 3, nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Errorf("request failed: status=%v err=%v", resp, err)
			return
		}
		answers <- ans
	}

	wg.Add(1)
	go issue()
	<-be.entered // leader is inside the engine

	wg.Add(followers)
	for i := 0; i < followers; i++ {
		go issue()
	}
	// Wait until every follower joined the flight.
	for i := 0; ; i++ {
		if s.m.coalesced.Value() == followers {
			break
		}
		if i > 5000 {
			t.Fatalf("followers joined = %d, want %d", s.m.coalesced.Value(), followers)
		}
		time.Sleep(time.Millisecond)
	}

	close(be.gate)
	wg.Wait()
	close(answers)

	if got := be.searchCalls.Load(); got != 1 {
		t.Errorf("engine executions = %d, want 1 (shared)", got)
	}
	coalesced := 0
	var first *answerJSON
	for ans := range answers {
		ans := ans
		if first == nil {
			first = &ans
		} else if len(ans.Results) != len(first.Results) || ans.Results[0] != first.Results[0] {
			t.Errorf("answers diverged: %v vs %v", ans.Results, first.Results)
		}
		if ans.Coalesced {
			coalesced++
		}
	}
	if coalesced != followers {
		t.Errorf("coalesced answers = %d, want %d", coalesced, followers)
	}
}

// TestMicroBatching pins the batcher: concurrent distinct top-k
// queries inside one window run as a single SearchBatch scatter.
func TestMicroBatching(t *testing.T) {
	be := newFakeBackend()
	cfg := bareConfig()
	cfg.BatchWindow = 100 * time.Millisecond // wide, so all three land in it
	cfg.MaxBatch = 8
	s, ts := newTestServer(t, be, cfg)

	const n = 3
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp, ans, err := searchReq(ts, float64(10+i), 3, 2, nil)
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status=%v err=%v", i, resp, err)
				return
			}
			// Each distinct query must get its own answer back.
			if want := float64(10 + i); len(ans.Results) != 1 || ans.Results[0].Distance != want {
				t.Errorf("request %d: results %v, want distance %v", i, ans.Results, want)
			}
		}(i)
	}
	wg.Wait()

	if got := be.batchCalls.Load(); got != 1 {
		t.Errorf("SearchBatch calls = %d, want 1", got)
	}
	if got := be.searchCalls.Load(); got != 0 {
		t.Errorf("solo Search calls = %d, want 0 (all batched)", got)
	}
	if got := s.m.batchedQueries.Value(); got != n {
		t.Errorf("batchedQueries = %d, want %d", got, n)
	}
}

// TestDrain pins graceful shutdown: Shutdown waits for in-flight
// requests, rejects new ones with 503, and leaves no goroutines
// behind.
func TestDrain(t *testing.T) {
	base := leakcheck.Base()
	be := newFakeBackend()
	be.gate = make(chan struct{})
	s := New(be, bareConfig())
	ts := httptest.NewServer(s.Handler())

	inflight := make(chan int, 1)
	go func() {
		resp, _, err := searchReq(ts, 1, 3, 2, nil)
		if err != nil {
			inflight <- 0
			return
		}
		inflight <- resp.StatusCode
	}()
	<-be.entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Shutdown must be draining before we probe rejection.
	for i := 0; ; i++ {
		s.mu.Lock()
		d := s.draining
		s.mu.Unlock()
		if d {
			break
		}
		if i > 5000 {
			t.Fatal("Shutdown never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _, err := searchReq(ts, 2, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", resp.StatusCode)
	}

	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(be.gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := <-inflight; got != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", got)
	}
	http.DefaultClient.CloseIdleConnections()
	ts.Close()
	leakcheck.Settle(t, base)
}

// TestHealthz pins the health endpoint: 200 while every worker
// serves, 503 once any is down or the server is draining.
func TestHealthz(t *testing.T) {
	be := newFakeBackend()
	s, ts := newTestServer(t, be, bareConfig())

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy: status %d, want 200", resp.StatusCode)
	}

	be.mu.Lock()
	be.healthy[0].Down = true
	be.mu.Unlock()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || doc.Status != "degraded" {
		t.Fatalf("down worker: status %d %q, want 503 degraded", resp.StatusCode, doc.Status)
	}

	be.mu.Lock()
	be.healthy[0].Down = false
	be.mu.Unlock()
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || doc.Status != "draining" {
		t.Fatalf("draining: status %d %q, want 503 draining", resp.StatusCode, doc.Status)
	}
	s.mu.Lock()
	s.draining = false
	s.mu.Unlock()
}

// TestRequestValidation pins the 400/405 surface.
func TestRequestValidation(t *testing.T) {
	be := newFakeBackend()
	cfg := bareConfig()
	cfg.MaxK = 100
	_, ts := newTestServer(t, be, cfg)

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{"points":`); got != http.StatusBadRequest {
		t.Errorf("truncated JSON: %d, want 400", got)
	}
	if got := post(`{"points":[],"k":3}`); got != http.StatusBadRequest {
		t.Errorf("empty points: %d, want 400", got)
	}
	if got := post(`{"points":[[1,2]],"k":101}`); got != http.StatusBadRequest {
		t.Errorf("k over MaxK: %d, want 400", got)
	}
	if got := post(`{"points":[[1,2]],"k":-1}`); got != http.StatusBadRequest {
		t.Errorf("negative k: %d, want 400", got)
	}

	resp, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: %d, want 405", resp.StatusCode)
	}

	// Radius negative.
	resp, err = http.Post(ts.URL+"/radius", "application/json",
		bytes.NewReader([]byte(`{"points":[[1,2]],"radius":-1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative radius: %d, want 400", resp.StatusCode)
	}
}

// TestMetricsEndpoint sanity-checks the /metrics document shape.
func TestMetricsEndpoint(t *testing.T) {
	be := newFakeBackend()
	cfg := bareConfig()
	cfg.CacheEntries = 8
	_, ts := newTestServer(t, be, cfg)

	if _, _, err := searchReq(ts, 1, 3, 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := searchReq(ts, 1, 3, 2, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["requests_search"].(float64) != 2 {
		t.Errorf("requests_search = %v, want 2", doc["requests_search"])
	}
	cache := doc["cache"].(map[string]any)
	if cache["hits"].(float64) != 1 || cache["misses"].(float64) != 1 {
		t.Errorf("cache hits/misses = %v/%v, want 1/1", cache["hits"], cache["misses"])
	}
	lat := doc["latency_us"].(map[string]any)["search"].(map[string]any)
	if lat["count"].(float64) != 2 {
		t.Errorf("latency count = %v, want 2", lat["count"])
	}
	index, ok := doc["index"].(map[string]any)
	if !ok {
		t.Fatal("metrics missing index section")
	}
	for _, key := range []string{"layout", "index_bytes", "partition_index_bytes"} {
		if _, ok := index[key]; !ok {
			t.Errorf("metrics index section missing %q", key)
		}
	}
}

// TestHistogramQuantiles pins the estimator on a known distribution.
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 0; i < 100; i++ {
		h.observe(200 * time.Microsecond) // bucket (100, 250]
	}
	p50 := h.quantile(0.50)
	if p50 < 100 || p50 > 250 {
		t.Errorf("p50 = %v, want within (100, 250]", p50)
	}
	if h.snapshot().Count != 100 {
		t.Errorf("count = %d, want 100", h.snapshot().Count)
	}
	var empty histogram
	if got := empty.quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
