package serve

import (
	"math"
	"slices"
	"sync"

	"repose"
)

// Query kinds distinguish top-k and radius answers in cache and
// flight keys.
const (
	kindTopK byte = iota
	kindRadius
)

// fnv-1a 64-bit.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnv64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// signature hashes a query's identity: kind, k, radius (raw float
// bits), the refined-mode dimensions (subtrajectory flag and segment
// bounds, time-window flag and endpoints — two queries differing only
// in mode must never share a cache entry), and every point's raw
// coordinate bits. Two textually different requests naming the same
// point sequence collide on purpose; genuinely different queries are
// additionally guarded by the exact comparison in query.equal, so a
// 64-bit hash collision degrades to a cache miss or an uncoalesced
// execution, never a wrong answer.
func (q *query) signature() uint64 {
	h := fnvByte(uint64(fnvOffset), q.kind)
	h = fnv64(h, uint64(q.k))
	h = fnv64(h, math.Float64bits(q.radius))
	var mode byte
	if q.sub {
		mode |= 1
	}
	if q.window {
		mode |= 2
	}
	h = fnvByte(h, mode)
	h = fnv64(h, uint64(q.minSeg))
	h = fnv64(h, uint64(q.maxSeg))
	h = fnv64(h, uint64(q.from))
	h = fnv64(h, uint64(q.to))
	for _, p := range q.pts {
		h = fnv64(h, math.Float64bits(p.X))
		h = fnv64(h, math.Float64bits(p.Y))
	}
	return h
}

// hashGens folds a generation vector into one 64-bit value for the
// flight key; the exact vector still rides along for comparison.
func hashGens(gens []uint64) uint64 {
	h := uint64(fnvOffset)
	for _, g := range gens {
		h = fnv64(h, g)
	}
	return h
}

// query is the exact identity a cache or flight entry answers:
// signature plus the fields the signature hashed, for collision-proof
// comparison.
type query struct {
	sig    uint64
	kind   byte
	k      int
	radius float64
	pts    []repose.Point

	// Refined-mode dimensions; part of the identity (see signature).
	sub            bool
	minSeg, maxSeg int
	window         bool
	from, to       int64
}

func (q query) equal(o query) bool {
	return q.sig == o.sig && q.kind == o.kind && q.k == o.k &&
		q.radius == o.radius &&
		q.sub == o.sub && q.minSeg == o.minSeg && q.maxSeg == o.maxSeg &&
		q.window == o.window && q.from == o.from && q.to == o.to &&
		slices.Equal(q.pts, o.pts)
}

// batchable reports whether the query may ride the top-k
// micro-batcher: only plain whole-trajectory top-k queries do.
func (q query) batchable() bool {
	return q.kind == kindTopK && !q.sub && !q.window
}

// cacheEntry is one cached answer: the query, the generation vector
// it was computed under (its floor — see doc.go), and the results.
type cacheEntry struct {
	q     query
	gens  []uint64
	items []repose.Result

	prev, next *cacheEntry // LRU list, most recent at head
}

// cacheShard is one lock domain of the answer cache: a hash map by
// query signature plus an intrusive LRU list. One entry per
// signature — an answer recomputed under a newer generation vector
// replaces its predecessor, which is how invalidation manifests.
type cacheShard struct {
	mu         sync.Mutex
	entries    map[uint64]*cacheEntry
	head, tail *cacheEntry
	cap        int
}

// answerCache is the sharded generation-keyed LRU.
type answerCache struct {
	shards []cacheShard
	mask   uint64
	m      *metrics
}

// newCache sizes a cache of totalEntries across shards (rounded up
// to a power of two). totalEntries <= 0 disables caching (nil cache).
func newCache(totalEntries, shards int, m *metrics) *answerCache {
	if totalEntries <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (totalEntries + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &answerCache{shards: make([]cacheShard, n), mask: uint64(n - 1), m: m}
	for i := range c.shards {
		c.shards[i] = cacheShard{entries: make(map[uint64]*cacheEntry, perShard), cap: perShard}
	}
	return c
}

func (c *answerCache) shard(sig uint64) *cacheShard {
	// Shard by the high bits: the low bits pick the map bucket.
	return &c.shards[(sig>>48)&c.mask]
}

// get returns the cached answer for q at exactly the generation
// vector gens. A same-query entry keyed by a different vector has
// been superseded by a mutation: it is removed and counted as an
// invalidation (the lookup itself still counts as a miss).
func (c *answerCache) get(q query, gens []uint64) ([]repose.Result, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(q.sig)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[q.sig]
	if !ok || !e.q.equal(q) {
		c.m.cacheMisses.Add(1)
		return nil, false
	}
	if !slices.Equal(e.gens, gens) {
		s.remove(e)
		c.m.cacheInvalidations.Add(1)
		c.m.cacheMisses.Add(1)
		return nil, false
	}
	s.moveToFront(e)
	c.m.cacheHits.Add(1)
	return e.items, true
}

// put stores an answer computed under the generation vector gens
// (read before the query was dispatched — the entry's floor).
func (c *answerCache) put(q query, gens []uint64, items []repose.Result) {
	if c == nil {
		return
	}
	s := c.shard(q.sig)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[q.sig]; ok {
		// Replace in place: same query at a newer generation, or a
		// signature collision (either way the old answer goes).
		e.q, e.gens, e.items = q, gens, items
		s.moveToFront(e)
		return
	}
	e := &cacheEntry{q: q, gens: gens, items: items}
	s.entries[q.sig] = e
	s.pushFront(e)
	if len(s.entries) > s.cap {
		if lru := s.tail; lru != nil {
			s.remove(lru)
			c.m.cacheEvictions.Add(1)
		}
	}
}

// len counts entries across shards (metrics only).
func (c *answerCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Intrusive LRU list plumbing; callers hold the shard lock.

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) remove(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(s.entries, e.q.sig)
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	// Detach without touching the map.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	s.pushFront(e)
}
