// Package serve is the concurrent query gateway over a repose.Index:
// an HTTP/JSON front end that turns the engine's fast single-query
// path into sustained multi-client QPS. It layers, from the socket
// inward:
//
//   - per-client token-bucket rate limiting (429 + Retry-After),
//   - a sharded LRU answer cache keyed by (query, k, kind,
//     generation vector),
//   - request coalescing: singleflight for identical in-flight
//     queries, and micro-batching of concurrent distinct top-k
//     queries into one SearchBatch scatter,
//   - bounded-worker-pool admission control with queue-depth
//     rejection (429 + Retry-After when the queue is full),
//
// plus operational endpoints: GET /healthz (Index.Health), GET
// /metrics (expvar counters: queue depth, cache hit/miss/
// invalidation, coalesce ratio, per-route latency histograms), and
// graceful drain via Server.Shutdown (reject new work, finish
// in-flight requests).
//
// # Cache exactness: generation-keyed answers cannot be stale
//
// The cache key includes the index's per-partition generation vector
// (Index.Generations), read freshly for every request before the
// lookup. The claim: a cache hit can never serve an answer that
// misses a mutation acknowledged before the request began.
//
// Three properties of the epoch/generation scheme carry the
// argument:
//
//  1. Generations only advance. Every Insert/Delete/Upsert/Compact
//     bumps the touched partitions' generations, and the vector a
//     request reads is the authoritative one (each partition's
//     current generation locally; curGen — the newest any replica
//     acknowledged, below which no replica serves reads — remotely).
//
//  2. A mutation's generations are visible in the vector no later
//     than the mutation call returns. So a request that began after
//     a mutation was acknowledged reads a vector ≥ the mutation's
//     generations — pointwise strictly newer than any vector read
//     before the mutation on the partitions it touched.
//
//  3. An entry cached under vector G was computed by a search
//     dispatched after G was read. Snapshot-isolated partition scans
//     read the then-current state, so the cached answer reflects
//     every partition at generation ≥ G[p].
//
// Now suppose request R begins after mutation M is acknowledged, and
// R hits an entry E. A hit requires R's freshly-read vector to equal
// E's key vector G exactly. By (1) and (2), R's vector includes M's
// generations, so G includes them too, and by (3) E's answer
// reflects state at least that new — it cannot miss M. Conversely, a
// stale entry (computed before M) is keyed by a vector that no
// request issued after M's acknowledgement can ever read again; it
// is unreachable and ages out of the LRU. No clocks, no TTLs, no
// explicit invalidation fan-out: staleness is impossible by
// construction, which is why the stress suite can assert every
// served answer bit-identical to the brute-force oracle at its
// pinned generation while mutations race the queries.
//
// The only freshness caveat runs the other way: an entry may embed a
// mutation slightly newer than its key vector (the mutation landed
// between the vector read and the partition scan). Serving it to a
// request that read the same (older) vector is serving a concurrent
// read — permitted by snapshot isolation, and exactly what an
// uncached query racing the same mutation could observe.
//
// Request coalescing inherits the same argument because the
// singleflight key is the cache key, generation vector included: a
// follower only joins a leader whose vector equals its own, and the
// leader's answer floor (3) therefore covers every acknowledged
// mutation each follower observed. Micro-batched queries each carry
// their own pre-read vector and are cached under it; the shared
// SearchBatch scatter runs after every member's vector was read.
package serve
