package serve

import (
	"context"
	"slices"
	"sync"
	"time"

	"repose"
)

// flightKey identifies shareable work: the query signature plus a
// hash of the generation vector. Including the vector is what lets a
// follower inherit the leader's cache-exactness floor (doc.go); two
// requests that read different vectors never share an execution.
type flightKey struct {
	sig     uint64
	genHash uint64
}

// call is one in-flight execution that followers can join.
type call struct {
	q    query    // exact identity, to reject hash collisions
	gens []uint64 // exact vector, same reason
	done chan struct{}

	items []repose.Result
	err   error
}

// flightGroup deduplicates identical in-flight queries (singleflight
// keyed by query + generation vector).
type flightGroup struct {
	mu      sync.Mutex
	flights map[flightKey]*call
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[flightKey]*call)}
}

// join returns the call for (q, gens) and whether this request is the
// leader (must execute and complete the call). shared=false reports a
// key collision with a different query or vector — the caller
// executes alone, unshared.
func (g *flightGroup) join(q query, gens []uint64, genHash uint64) (c *call, leader, shared bool) {
	key := flightKey{sig: q.sig, genHash: genHash}
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.flights[key]; ok {
		if c.q.equal(q) && slices.Equal(c.gens, gens) {
			return c, false, true
		}
		return nil, false, false
	}
	c = &call{q: q, gens: gens, done: make(chan struct{})}
	g.flights[key] = c
	return c, true, true
}

// complete publishes the leader's result and retires the flight so a
// later identical request starts fresh (it will hit the cache
// instead, if the answer was cacheable).
func (g *flightGroup) complete(c *call, genHash uint64, items []repose.Result, err error) {
	g.mu.Lock()
	delete(g.flights, flightKey{sig: c.q.sig, genHash: genHash})
	g.mu.Unlock()
	c.items, c.err = items, err
	close(c.done)
}

// batchJob is one top-k query waiting in a micro-batch window.
type batchJob struct {
	pts   []repose.Point
	done  chan struct{}
	items []repose.Result
	err   error
}

// pendingBatch collects concurrent distinct top-k queries with the
// same k into one SearchBatch scatter.
type pendingBatch struct {
	jobs     []*batchJob
	launched bool
	timer    *time.Timer
}

// batcher turns bursts of concurrent distinct top-k queries into
// SearchBatch calls: the first arrival for a given k opens a window;
// queries arriving within it join the batch, which dispatches when
// the window elapses or MaxBatch members are waiting. A solo query
// pays at most the window in added latency; under load the window is
// always full of ride-alongs and the engine's batch scheduler
// amortizes the scatter.
type batcher struct {
	be       Backend
	window   time.Duration
	maxBatch int
	baseCtx  context.Context
	timeout  time.Duration
	m        *metrics

	mu      sync.Mutex
	pending map[int]*pendingBatch // by k
	wg      sync.WaitGroup        // in-flight dispatches, for drain
}

func newBatcher(be Backend, window time.Duration, maxBatch int, baseCtx context.Context, timeout time.Duration, m *metrics) *batcher {
	return &batcher{
		be: be, window: window, maxBatch: maxBatch,
		baseCtx: baseCtx, timeout: timeout, m: m,
		pending: make(map[int]*pendingBatch),
	}
}

// search runs one top-k query through the micro-batcher, blocking
// until its batch completes or ctx is cancelled (the batch itself
// keeps running for the other members; see dispatch).
func (b *batcher) search(ctx context.Context, pts []repose.Point, k int) ([]repose.Result, error) {
	job := &batchJob{pts: pts, done: make(chan struct{})}

	b.mu.Lock()
	p := b.pending[k]
	if p == nil {
		p = &pendingBatch{}
		b.pending[k] = p
		p.timer = time.AfterFunc(b.window, func() { b.fire(k, p) })
	}
	p.jobs = append(p.jobs, job)
	full := b.maxBatch > 0 && len(p.jobs) >= b.maxBatch
	if full {
		p.timer.Stop()
		b.launchLocked(k, p)
	}
	b.mu.Unlock()

	select {
	case <-job.done:
		return job.items, job.err
	case <-ctx.Done():
		// The caller gives up; the batch still completes and its
		// results feed the cache and any co-batched requests.
		return nil, ctx.Err()
	}
}

// fire is the window-timer path into launchLocked.
func (b *batcher) fire(k int, p *pendingBatch) {
	b.mu.Lock()
	b.launchLocked(k, p)
	b.mu.Unlock()
}

// launchLocked dispatches a pending batch exactly once (timer fire
// and batch-full can race) and opens the slot for the next window.
// Caller holds b.mu.
func (b *batcher) launchLocked(k int, p *pendingBatch) {
	if p.launched {
		return
	}
	p.launched = true
	if b.pending[k] == p {
		delete(b.pending, k)
	}
	jobs := p.jobs
	b.wg.Add(1)
	go b.dispatch(jobs, k)
}

// dispatch executes one batch on the server's base context, detached
// from any single member's request context: a member disconnecting
// must not cancel work the rest of the batch shares.
func (b *batcher) dispatch(jobs []*batchJob, k int) {
	defer b.wg.Done()
	b.m.batches.Add(1)
	b.m.batchedQueries.Add(int64(len(jobs)))

	ctx := b.baseCtx
	if b.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.timeout)
		defer cancel()
	}

	if len(jobs) == 1 {
		// No ride-alongs: skip the batch machinery.
		items, err := b.be.Search(ctx, &repose.Trajectory{Points: jobs[0].pts}, k)
		jobs[0].items, jobs[0].err = items, err
		close(jobs[0].done)
		return
	}

	qs := make([]*repose.Trajectory, len(jobs))
	for i, j := range jobs {
		qs[i] = &repose.Trajectory{Points: j.pts}
	}
	res, err := b.be.SearchBatch(ctx, qs, k)
	for i, j := range jobs {
		if err != nil {
			j.err = err
		} else {
			j.items = res[i]
		}
		close(j.done)
	}
}

// drain waits for all in-flight batch dispatches.
func (b *batcher) drain() { b.wg.Wait() }
