package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// admission bounds concurrent executing queries with a prefilled
// token channel, plus a bounded wait queue in front of it. A request
// that cannot get a token and finds the queue full is rejected
// immediately (429) rather than piling onto an already-saturated
// engine — the same semaphore discipline the engine's internal
// scheduler uses, surfaced at the front door.
type admission struct {
	tokens   chan struct{}
	queued   atomic.Int64
	maxQueue int64
	m        *metrics
}

func newAdmission(maxConcurrent, maxQueue int, m *metrics) *admission {
	a := &admission{
		tokens:   make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
		m:        m,
	}
	for i := 0; i < maxConcurrent; i++ {
		a.tokens <- struct{}{}
	}
	return a
}

// acquire obtains an execution slot, waiting in the bounded queue if
// none is free. It returns false if the queue is full or ctx is
// cancelled while waiting; the caller then rejects the request.
func (a *admission) acquire(ctx context.Context) bool {
	select {
	case <-a.tokens:
		a.m.active.Add(1)
		return true
	default:
	}
	// Slow path: take a queue position if one is left.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return false
	}
	// The gauge is itself an atomic counter: a read-then-store
	// (Store(Load())) here would let two racing requests publish a
	// stale or regressed depth.
	a.m.queueDepth.Add(1)
	defer func() {
		a.queued.Add(-1)
		a.m.queueDepth.Add(-1)
	}()
	select {
	case <-a.tokens:
		a.m.active.Add(1)
		return true
	case <-ctx.Done():
		return false
	}
}

func (a *admission) release() {
	a.m.active.Add(-1)
	a.tokens <- struct{}{}
}

// retryAfter estimates how long a rejected client should back off:
// one mean service time per queued-or-active request ahead of it,
// floored at a second. Coarse on purpose — it is a hint, not a
// reservation.
func (a *admission) retryAfter() time.Duration {
	waiting := a.queued.Load() + int64(cap(a.tokens))
	mean := time.Duration(0)
	if n := a.m.searchLatency.count.Load(); n > 0 {
		mean = time.Duration(a.m.searchLatency.sumUS.Load()/n) * time.Microsecond
	}
	d := time.Duration(waiting) * mean / time.Duration(cap(a.tokens))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token bucket map: rate tokens/second,
// burst capacity, keyed by client id. The clock is injectable so
// tests advance it deterministically.
type rateLimiter struct {
	rate       float64
	burst      float64
	now        func() time.Time
	maxClients int

	mu      sync.Mutex
	clients map[string]*bucket
}

// newRateLimiter returns nil (no limiting) when rate <= 0.
func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:       rate,
		burst:      float64(burst),
		now:        now,
		maxClients: 10_000,
		clients:    make(map[string]*bucket),
	}
}

// allow spends one token from key's bucket. On refusal it also
// returns how long until a token accrues.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[key]
	if b == nil {
		if len(l.clients) >= l.maxClients {
			l.sweepLocked(now)
			// All buckets recently active: the sweep freed nothing, so
			// evict the least-recently-seen bucket instead — maxClients
			// is a hard cap, not a hint. The evicted client restarts
			// with a full burst if it returns, which only errs
			// permissive.
			if len(l.clients) >= l.maxClients {
				l.evictOldestLocked()
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	return true, 0
}

// sweepLocked evicts buckets idle long enough to have refilled, which
// makes them indistinguishable from fresh ones. Caller holds l.mu.
func (l *rateLimiter) sweepLocked(now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.clients {
		if now.Sub(b.last) >= full {
			delete(l.clients, k)
		}
	}
}

// evictOldestLocked removes the bucket with the oldest last-seen time
// — the fallback that keeps the client map hard-capped when every
// bucket is too fresh for sweepLocked. Linear, but it only runs when
// the map is at maxClients and the sweep freed nothing. Caller holds
// l.mu.
func (l *rateLimiter) evictOldestLocked() {
	var (
		oldestKey string
		oldest    time.Time
		found     bool
	)
	for k, b := range l.clients {
		if !found || b.last.Before(oldest) {
			oldestKey, oldest, found = k, b.last, true
		}
	}
	if found {
		delete(l.clients, oldestKey)
	}
}
