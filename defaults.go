package repose

import "runtime"

// defaultPartitions returns the default global partition count: one
// per available core, mirroring the paper's setup where each of the
// 64 cluster cores processes one of the 64 default partitions.
func defaultPartitions() int {
	return runtime.GOMAXPROCS(0)
}
