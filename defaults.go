package repose

import (
	"errors"
	"runtime"

	"repose/internal/cluster"
	"repose/internal/rptrie"
)

// defaultPartitions returns the default global partition count: one
// per available core, mirroring the paper's setup where each of the
// 64 cluster cores processes one of the 64 default partitions.
func defaultPartitions() int {
	return runtime.GOMAXPROCS(0)
}

// Typed sentinel errors returned by the query methods; match them
// with errors.Is. Context cancellation surfaces as the ctx's own
// error (context.Canceled / context.DeadlineExceeded), wrapped.
var (
	// ErrEmptyQuery rejects a nil query or one without points.
	ErrEmptyQuery = errors.New("repose: empty query")
	// ErrBadK rejects a non-positive result size k.
	ErrBadK = errors.New("repose: k must be positive")
	// ErrBadRadius rejects a negative search radius.
	ErrBadRadius = errors.New("repose: negative radius")
	// ErrClosed rejects queries on a closed Index.
	ErrClosed = errors.New("repose: index closed")
	// ErrSuccinctUnsupported rejects SearchRadius on indexes built
	// with LayoutSuccinct: that layout shares the top-k search
	// machinery but has no range-walk implementation (LayoutCompressed
	// does, as does LayoutPointer). Online updates
	// (Insert/Delete/Upsert/CompactNow) are fully supported on
	// succinct indexes.
	ErrSuccinctUnsupported = errors.New("repose: radius search is not supported on succinct indexes")
	// ErrEmptyTrajectory rejects inserting a nil trajectory or one
	// without points.
	ErrEmptyTrajectory = errors.New("repose: empty trajectory")
	// ErrDuplicateID rejects inserting an id that is already live
	// (use Upsert to replace). Match with errors.Is.
	ErrDuplicateID = cluster.ErrDuplicateID
	// ErrImmutableIndex rejects mutations on an engine whose
	// partition indexes have no online-update support.
	ErrImmutableIndex = cluster.ErrImmutable
	// ErrUnavailable reports a query or mutation that found some
	// partition with no live in-sync replica: every worker holding it
	// is dead, circuit-broken, or awaiting a state restore. With
	// replication (WithReplication) this requires multiple concurrent
	// worker failures; without it, any worker death. Match with
	// errors.Is. The index recovers automatically once a replica
	// returns.
	ErrUnavailable = cluster.ErrUnavailable
)

// QueryOption modulates a single query without rebuilding the index;
// pass any number to Search, SearchRadius, or SearchBatch. Options
// behave identically on local and remote backends.
type QueryOption func(*queryConfig)

// queryConfig collects the applied options.
type queryConfig struct {
	report        *QueryReport
	batchReport   *BatchReport
	partitions    []int
	noPivots      bool
	refineWorkers int
	probeBudget   int
	bestEffort    bool

	// Refined query modes: sub is set by SearchSub (score the
	// best-matching contiguous segment), window by WithTimeWindow
	// (restrict scoring to samples timestamped inside [from, to]).
	sub            bool
	minSeg, maxSeg int
	window         bool
	from, to       int64
}

func applyQueryOptions(opts []QueryOption) queryConfig {
	var qc queryConfig
	for _, o := range opts {
		o(&qc)
	}
	return qc
}

// cluster converts the applied options to the engine's query options.
func (qc queryConfig) cluster() cluster.QueryOptions {
	return cluster.QueryOptions{
		Partitions:    qc.partitions,
		NoPivots:      qc.noPivots,
		RefineWorkers: qc.refineWorkers,
		ProbeBudget:   qc.probeBudget,
		BestEffort:    qc.bestEffort,
		Refine: rptrie.RefineSpec{
			Sub: qc.sub, MinSeg: qc.minSeg, MaxSeg: qc.maxSeg,
			Window: qc.window, From: qc.from, To: qc.to,
		},
	}
}

// WithReport fills r with the query's execution report — wall time,
// per-partition compute, and the straggler ratio r.Imbalance() — when
// the query returns. Ignored by SearchBatch (use WithBatchReport).
func WithReport(r *QueryReport) QueryOption {
	return func(qc *queryConfig) { qc.report = r }
}

// WithBatchReport fills r with a batch's execution report — makespan,
// per-query completion times, total work — when SearchBatch returns.
// Ignored by the single-query methods (use WithReport).
func WithBatchReport(r *BatchReport) QueryOption {
	return func(qc *queryConfig) { qc.batchReport = r }
}

// WithPartitions restricts the query to the given partition ids
// (deduplicated; out-of-range ids fail the query). Useful for
// straggler diagnosis and partial re-queries.
func WithPartitions(partitions ...int) QueryOption {
	return func(qc *queryConfig) { qc.partitions = partitions }
}

// WithoutPivots disables the pivot lower bound (LBp) for this query,
// including the up-front query-to-pivot distance computations — the
// per-query form of the paper's pivot ablation. Results are
// unchanged; only the pruning power differs.
func WithoutPivots() QueryOption {
	return func(qc *queryConfig) { qc.noPivots = true }
}

// WithProbeBudget splits a Search into two phases guided by the
// engine's learned reward-per-probe scores: the n highest-scoring
// partitions are probed first, and every remaining partition is then
// either pruned — an admissible lower bound proves it cannot improve
// the current top-k — or probed in a second wave. Results stay
// bit-identical to a full scatter; only the work order (and, when the
// bounds bite, the amount of work) changes. A report captured with
// WithReport lists the probed and pruned partitions. n <= 0 or
// n >= the partition count behaves like a plain full scatter. Only
// Search honors the budget; SearchRadius and SearchBatch ignore it.
func WithProbeBudget(n int) QueryOption {
	return func(qc *queryConfig) { qc.probeBudget = n }
}

// WithBestEffortProbes relaxes WithProbeBudget's exactness: the tail
// beyond the budget is skipped outright instead of bound-checked,
// capping the query at exactly n partition scans. The answer may miss
// trajectories held by skipped partitions (listed in
// QueryReport.SkippedPartitions) and is not cache-eligible. Ignored
// without a probe budget.
func WithBestEffortProbes() QueryOption {
	return func(qc *queryConfig) { qc.bestEffort = true }
}

// WithTimeWindow restricts the query to trajectories with at least
// one sample timestamped inside the closed window [from, to], and
// scores only each candidate's in-window run of samples. Trajectories
// without timestamps (Trajectory.Times unset) never match a windowed
// query. The option applies to Search, SearchSub, and SearchRadius;
// answers remain exact over the restricted candidate set. Timestamps
// are whatever int64 convention the application indexed (Unix seconds,
// milliseconds, ...), compared verbatim.
func WithTimeWindow(from, to int64) QueryOption {
	return func(qc *queryConfig) { qc.window, qc.from, qc.to = true, from, to }
}

// WithSegmentLength bounds the matched segment of a SearchSub query to
// [min, max] sample points; min < 1 means 1, max <= 0 means unbounded.
// Ignored by whole-trajectory queries.
func WithSegmentLength(min, max int) QueryOption {
	return func(qc *queryConfig) { qc.minSeg, qc.maxSeg = min, max }
}

// WithRefineWorkers parallelizes exact-distance refinement of fat
// trie leaves inside each partition across n goroutines (n < 2
// refines sequentially, the default). Results are bit-identical to
// the sequential path; the knob trades per-query latency for extra
// cores when the query touches few partitions — for example with
// WithPartitions — or when leaves hold many trajectories.
func WithRefineWorkers(n int) QueryOption {
	return func(qc *queryConfig) { qc.refineWorkers = n }
}
