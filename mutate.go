package repose

import (
	"context"

	"repose/internal/cluster"
)

// Online index maintenance. Insert, Delete, and Upsert work
// identically on local and remote engines: the driver routes each new
// trajectory to a partition (mirroring the build-time partitioning
// strategy) and tracks ownership, so deletes hit only the owning
// partition. Mutations are snapshot-isolated against queries — a
// concurrent Search/SearchRadius/SearchBatch observes either all of a
// mutation batch's effect on a partition or none of it, never a
// half-applied state — and a query issued after a mutation returns is
// guaranteed to observe it (the Index pins subsequent queries to the
// generations its own mutations produced).
//
// Mutations land in a small per-partition delta overlay (pending
// inserts + tombstones) scanned exactly at query time; compaction
// folds the overlay back into the trie. Use WithAutoCompact for a
// threshold-triggered policy, or CompactNow to force it.
//
// Failure contract: a mutation that returns a context error on the
// remote engine has an unknown outcome — the worker may have applied
// it after the driver stopped waiting. Recovery is built in: online
// routing is a pure function of the trajectory, so retrying the same
// Insert reaches the same partition and fails with a duplicate-id
// error if the original did land (retrying as Upsert is idempotent),
// and Delete broadcasts ids the driver does not recognize, so it can
// always remove a trajectory whose insertion outcome was lost.

// MutateOption modulates a single Insert/Delete/Upsert call.
type MutateOption func(*mutateConfig)

type mutateConfig struct {
	autoCompact float64
}

// DefaultCompactFraction is a good general-purpose WithAutoCompact
// threshold: compaction triggers once a partition's pending delta
// exceeds a quarter of its live size, keeping the unindexed overlay's
// linear scan bounded at ~25% of a full scan in the worst case.
const DefaultCompactFraction = 0.25

// WithAutoCompact enables threshold-triggered compaction for this
// mutation call: after the mutation applies, any touched partition
// whose pending delta exceeds fraction of its live trajectory count
// (and a small absolute floor) is compacted before the call returns.
// Compaction rebuilds the partition's trie with all pending inserts
// and deletes folded in, restoring the fully indexed read path.
func WithAutoCompact(fraction float64) MutateOption {
	return func(mc *mutateConfig) { mc.autoCompact = fraction }
}

func applyMutateOptions(opts []MutateOption) mutateConfig {
	var mc mutateConfig
	for _, o := range opts {
		o(&mc)
	}
	return mc
}

func (mc mutateConfig) cluster() cluster.MutateOptions {
	return cluster.MutateOptions{AutoCompact: mc.autoCompact}
}

// checkMutate runs the validations shared by every mutation method.
func (x *Index) checkMutate(trs []*Trajectory) error {
	if x.closed.Load() {
		return ErrClosed
	}
	for _, tr := range trs {
		if tr == nil || len(tr.Points) == 0 {
			return ErrEmptyTrajectory
		}
	}
	return nil
}

// noteGens folds a mutation's per-partition generations into the pins
// attached to subsequent queries.
func (x *Index) noteGens(g cluster.Gens) {
	if len(g) == 0 {
		return
	}
	x.genMu.Lock()
	defer x.genMu.Unlock()
	if x.gens == nil {
		x.gens = make([]uint64, x.eng.exec().NumPartitions())
	}
	for pid, gen := range g {
		if pid < 0 {
			continue
		}
		// A split can grow the partition count after the pin vector was
		// first sized; extend it rather than dropping the pin.
		for pid >= len(x.gens) {
			x.gens = append(x.gens, 0)
		}
		if gen > x.gens[pid] {
			x.gens[pid] = gen
		}
	}
}

// clusterOptions converts applied query options to engine options,
// attaching the read-your-writes generation pins.
func (x *Index) clusterOptions(qc queryConfig) cluster.QueryOptions {
	co := qc.cluster()
	x.genMu.Lock()
	if x.gens != nil {
		co.MinGens = append([]uint64(nil), x.gens...)
	}
	x.genMu.Unlock()
	return co
}

// Insert adds trajectories to the live index. Every query issued
// after it returns sees them. It fails — before applying anything —
// on an empty trajectory (ErrEmptyTrajectory) or an id that is
// already live (ErrDuplicateID); use Upsert to replace.
func (x *Index) Insert(ctx context.Context, trs []*Trajectory, opts ...MutateOption) error {
	if err := x.checkMutate(trs); err != nil {
		return err
	}
	if len(trs) == 0 {
		return nil
	}
	mc := applyMutateOptions(opts)
	gens, err := x.eng.exec().Insert(ctx, trs, mc.cluster())
	x.noteGens(gens)
	return translate(err)
}

// Delete removes the given ids from the live index, returning how
// many were actually live. Queries issued after it returns never see
// them. Unknown ids are skipped, not an error.
func (x *Index) Delete(ctx context.Context, ids []int, opts ...MutateOption) (int, error) {
	if x.closed.Load() {
		return 0, ErrClosed
	}
	if len(ids) == 0 {
		return 0, nil
	}
	mc := applyMutateOptions(opts)
	removed, gens, err := x.eng.exec().Delete(ctx, ids, mc.cluster())
	x.noteGens(gens)
	return removed, translate(err)
}

// Upsert inserts trajectories, replacing any live trajectory sharing
// an id. A replacement lands in the id's owning partition as one
// snapshot-atomic swap — no query ever observes the id as absent —
// and a new id routes like an Insert. Ids duplicated within the batch
// fail with ErrDuplicateID before anything applies.
func (x *Index) Upsert(ctx context.Context, trs []*Trajectory, opts ...MutateOption) error {
	if err := x.checkMutate(trs); err != nil {
		return err
	}
	if len(trs) == 0 {
		return nil
	}
	mc := applyMutateOptions(opts)
	gens, err := x.eng.exec().Upsert(ctx, trs, mc.cluster())
	x.noteGens(gens)
	return translate(err)
}

// CompactNow folds every partition's pending delta back into its
// trie, synchronously. A no-op on partitions with an empty delta.
func (x *Index) CompactNow(ctx context.Context) error {
	if x.closed.Load() {
		return ErrClosed
	}
	gens, err := x.eng.exec().Compact(ctx, nil)
	x.noteGens(gens)
	return translate(err)
}
