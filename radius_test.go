package repose

import (
	"context"
	"math"
	"testing"

	"repose/internal/dist"
)

func TestSearchRadiusPublicAPI(t *testing.T) {
	ds := testData(t, 150)
	idx, err := Build(ds, Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := ds[12]
	const radius = 0.4
	got, err := idx.SearchRadius(context.Background(), q, radius)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force reference.
	want := map[int]float64{}
	for _, tr := range ds {
		if d := dist.HausdorffDist(q.Points, tr.Points); d <= radius {
			want[tr.ID] = d
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i, r := range got {
		w, ok := want[r.ID]
		if !ok {
			t.Fatalf("unexpected id %d", r.ID)
		}
		if math.Abs(r.Dist-w) > 1e-9 {
			t.Fatalf("id %d dist %v want %v", r.ID, r.Dist, w)
		}
		if i > 0 && got[i-1].Dist > r.Dist {
			t.Fatal("results unsorted")
		}
	}
	// The query itself is always inside any radius.
	if len(got) == 0 || got[0].ID != q.ID || got[0].Dist != 0 {
		t.Errorf("self match missing: %+v", got)
	}
}
