package repose

import (
	"context"
	"math"
	"testing"

	"repose/internal/dist"
	"repose/internal/oracle"
)

func TestSearchRadiusPublicAPI(t *testing.T) {
	ds := testData(t, 150)
	// Range search is supported by the pointer and compressed layouts
	// (succinct declines; see TestPublicAPIErrors).
	for _, layout := range []Layout{LayoutPointer, LayoutCompressed} {
		idx, err := Build(ds, Options{Partitions: 4}, WithLayout(layout))
		if err != nil {
			t.Fatal(err)
		}
		q := ds[12]
		const radius = 0.4
		got, err := idx.SearchRadius(context.Background(), q, radius)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		want := oracle.Radius(dist.Hausdorff, dist.Params{Epsilon: idx.opts.Epsilon, Gap: idx.region.Min}, ds, q.Points, radius)
		if len(got) != len(want) {
			t.Fatalf("%v: got %d results, want %d", layout, len(got), len(want))
		}
		for i, r := range got {
			if r.ID != want[i].ID {
				t.Fatalf("%v: rank %d id %d, want %d", layout, i, r.ID, want[i].ID)
			}
			if math.Abs(r.Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("%v: id %d dist %v want %v", layout, r.ID, r.Dist, want[i].Dist)
			}
		}
		// The query itself is always inside any radius.
		if len(got) == 0 || got[0].ID != q.ID || got[0].Dist != 0 {
			t.Errorf("%v: self match missing: %+v", layout, got)
		}
	}
}
