package repose

import (
	"context"
	"math"
	"testing"

	"repose/internal/dist"
	"repose/internal/oracle"
)

func TestSearchRadiusPublicAPI(t *testing.T) {
	ds := testData(t, 150)
	idx, err := Build(ds, Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := ds[12]
	const radius = 0.4
	got, err := idx.SearchRadius(context.Background(), q, radius)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Radius(dist.Hausdorff, dist.Params{Epsilon: idx.opts.Epsilon, Gap: idx.region.Min}, ds, q.Points, radius)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.ID != want[i].ID {
			t.Fatalf("rank %d id %d, want %d", i, r.ID, want[i].ID)
		}
		if math.Abs(r.Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("id %d dist %v want %v", r.ID, r.Dist, want[i].Dist)
		}
	}
	// The query itself is always inside any radius.
	if len(got) == 0 || got[0].ID != q.ID || got[0].Dist != 0 {
		t.Errorf("self match missing: %+v", got)
	}
}
