package repose

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repose/internal/cluster"
	"repose/internal/geo"
)

// Durability: Build with WithDurableDir keeps every partition index
// on disk — a checkpoint image plus a write-ahead log per partition,
// under <dir>/p<pid> — and OpenDurable recovers the whole index from
// that directory after a crash or restart, each partition replaying
// its own log to the exact generation it had acknowledged. Every
// mutation (Insert, Delete, Upsert, CompactNow) returns only after
// its log record is fsynced.

// WithDurableDir makes Build install every partition disk-backed
// under dir (created if missing, wiped of any previous index):
//
//	idx, err := repose.Build(ds, repose.Options{}, repose.WithDurableDir("/var/lib/repose"))
//
// A later repose.OpenDurable(dir) recovers the index without the
// dataset. Local engine only; remote workers persist with the
// repose-worker binary's -data-dir flag instead.
func WithDurableDir(dir string) BuildOption {
	return func(o *Options) { o.DurableDir = dir }
}

// manifestName is the file recording what the durable directory
// holds; partitions live next to it in p<pid> subdirectories.
const manifestName = "MANIFEST"

// durableManifest is the gob-encoded description OpenDurable rebuilds
// an Index from: the normalized build options, the dataset region,
// and the engine spec (grid, pivots, partitioning strategy).
type durableManifest struct {
	Opts   Options
	Region geo.Rect
	Spec   cluster.IndexSpec
}

// writeManifest commits the manifest atomically (temp file + rename)
// so a crash mid-build never leaves a readable-but-wrong manifest.
func writeManifest(dir string, m durableManifest) error {
	f, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = gob.NewEncoder(f).Encode(&m)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, manifestName))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repose: durable manifest: %w", err)
	}
	return nil
}

// readManifest loads a directory's manifest.
func readManifest(dir string) (durableManifest, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return durableManifest{}, fmt.Errorf("repose: not a durable index directory: %w", err)
	}
	defer f.Close()
	var m durableManifest
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return durableManifest{}, fmt.Errorf("repose: durable manifest unreadable: %w", err)
	}
	return m, nil
}

// OpenDurable recovers an index built with WithDurableDir from its
// directory: no dataset needed — every partition reloads its newest
// checkpoint and replays its own write-ahead log, arriving at the
// exact state whose mutations were acknowledged before the process
// died. The recovered Index answers the same query and mutation
// surface as the Build result it resumes.
func OpenDurable(dir string) (*Index, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	eng, err := cluster.OpenLocalDurable(m.Spec, m.Opts.Partitions, m.Opts.Workers, dir)
	if err != nil {
		return nil, err
	}
	m.Opts.DurableDir = dir // the directory may have moved since the build
	return &Index{eng: engineLocal{eng}, region: m.Region, opts: m.Opts}, nil
}
