package repose

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repose/internal/dist"
	"repose/internal/leakcheck"
	"repose/internal/oracle"
)

// freshTraj makes one random trajectory with the given id inside the
// test dataset's region.
func freshTraj(rng *rand.Rand, id int) *Trajectory {
	pts := make([]Point, 3+rng.Intn(12))
	for j := range pts {
		pts[j] = Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
	}
	return &Trajectory{ID: id, Points: pts}
}

// TestOnlineUpdatesPublicAPI is the acceptance test of the public
// mutation surface: an inserted trajectory is returned by the very
// next query and a deleted one never is, identically on the local and
// remote engines, for all three trie layouts.
func TestOnlineUpdatesPublicAPI(t *testing.T) {
	ds := testData(t, 150)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))

	for _, layout := range []Layout{LayoutPointer, LayoutSuccinct, LayoutCompressed} {
		opts := Options{Partitions: 4, Layout: layout}
		local, err := Build(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := BuildRemote(ds, opts, startTestWorkers(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		defer remote.Close()

		for _, idx := range []*Index{local, remote} {
			name := fmt.Sprintf("layout=%v/%s", layout, idx.Engine())
			// Insert an exact copy of a probe query: next Search must
			// return it first.
			probe := freshTraj(rng, 900_000)
			if err := idx.Insert(ctx, []*Trajectory{probe}); err != nil {
				t.Fatalf("%s insert: %v", name, err)
			}
			res, err := idx.Search(ctx, probe, 1)
			if err != nil {
				t.Fatalf("%s search: %v", name, err)
			}
			if len(res) != 1 || res[0].ID != probe.ID || res[0].Dist != 0 {
				t.Fatalf("%s: inserted trajectory not returned: %v", name, res)
			}
			if got := idx.Stats().Trajectories; got != len(ds)+1 {
				t.Fatalf("%s: Stats.Trajectories = %d, want %d", name, got, len(ds)+1)
			}

			// Delete it plus a build-time member: neither may ever
			// appear again.
			n, err := idx.Delete(ctx, []int{probe.ID, ds[0].ID, 123456789})
			if err != nil {
				t.Fatalf("%s delete: %v", name, err)
			}
			if n != 2 {
				t.Fatalf("%s: delete removed %d, want 2", name, n)
			}
			res, err = idx.Search(ctx, probe, len(ds)+5)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				if r.ID == probe.ID || r.ID == ds[0].ID {
					t.Fatalf("%s: deleted trajectory %d returned", name, r.ID)
				}
			}

			// Upsert replaces in place; a brand-new id in the same
			// batch behaves like an insert.
			repl := freshTraj(rng, ds[1].ID)
			novel := freshTraj(rng, 901_000)
			if err := idx.Upsert(ctx, []*Trajectory{repl, novel}); err != nil {
				t.Fatalf("%s upsert: %v", name, err)
			}
			for _, probe := range []*Trajectory{repl, novel} {
				res, err = idx.Search(ctx, probe, 1)
				if err != nil {
					t.Fatal(err)
				}
				if len(res) != 1 || res[0].ID != probe.ID || res[0].Dist != 0 {
					t.Fatalf("%s: upserted trajectory %d not returned: %v", name, probe.ID, res)
				}
			}
			if _, err := idx.Delete(ctx, []int{novel.ID}); err != nil {
				t.Fatal(err)
			}

			// Compaction changes nothing observable.
			before, err := idx.Search(ctx, ds[7], 10)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.CompactNow(ctx); err != nil {
				t.Fatalf("%s compact: %v", name, err)
			}
			after, err := idx.Search(ctx, ds[7], 10)
			if err != nil {
				t.Fatal(err)
			}
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("%s: compaction changed rank %d: %v vs %v", name, i, before[i], after[i])
				}
			}

			// Typed errors.
			if err := idx.Insert(ctx, []*Trajectory{{ID: 1}}); !errors.Is(err, ErrEmptyTrajectory) {
				t.Fatalf("%s empty insert: %v", name, err)
			}
			if err := idx.Insert(ctx, []*Trajectory{ds[9]}); !errors.Is(err, ErrDuplicateID) {
				t.Fatalf("%s duplicate insert: %v", name, err)
			}
			// Undo this engine's edits so the next engine starts from
			// the same world... each engine has its own copy, so no
			// cleanup is needed; just sanity-check the count.
			if got := idx.Stats().Trajectories; got != len(ds)-1 {
				t.Fatalf("%s: final Trajectories = %d, want %d", name, got, len(ds)-1)
			}
		}
	}
}

// TestMutationsAfterClose: every mutation method fails with ErrClosed
// on a closed index.
func TestMutationsAfterClose(t *testing.T) {
	ds := testData(t, 40)
	idx, err := Build(ds, Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := idx.Insert(ctx, []*Trajectory{freshTraj(rand.New(rand.NewSource(1)), 999)}); !errors.Is(err, ErrClosed) {
		t.Errorf("insert after close: %v", err)
	}
	if _, err := idx.Delete(ctx, []int{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("delete after close: %v", err)
	}
	if err := idx.CompactNow(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("compact after close: %v", err)
	}
}

// TestConcurrentMutationStress races queries against Insert, Delete,
// and CompactNow on one shared local index — the -race stress of the
// snapshot scheme. Every racing query must be snapshot-consistent:
// sorted, deduplicated, distances exact for a known version of the
// id, and ids deleted before the race started must never appear. The
// final quiesced state is pinned to the oracle, and the run must not
// leak goroutines.
func TestConcurrentMutationStress(t *testing.T) {
	ds := testData(t, 120)
	idx, err := Build(ds, Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m := idx.opts.Measure
	params := dist.Params{Epsilon: idx.opts.Epsilon, Gap: idx.region.Min}

	// Phase 0 (sequential): delete a known set; the racing phase must
	// never surface these ids, and mutators never reuse them.
	preDeleted := []int{ds[0].ID, ds[1].ID, ds[2].ID}
	if n, err := idx.Delete(ctx, preDeleted); err != nil || n != 3 {
		t.Fatalf("pre-delete: n=%d err=%v", n, err)
	}
	dead := map[int]bool{}
	for _, id := range preDeleted {
		dead[id] = true
	}

	// Every id ever inserted keeps exactly one immutable version, so
	// racing queries can verify reported distances exactly.
	versions := sync.Map{} // id → *Trajectory
	for _, tr := range ds {
		versions.Store(tr.ID, tr)
	}

	if _, err := idx.Search(ctx, ds[5], 5); err != nil { // warm the pools
		t.Fatal(err)
	}
	base := leakcheck.Base()

	const (
		mutators  = 2
		queriers  = 4
		perWorker = 60
	)
	var wg sync.WaitGroup
	errCh := make(chan error, mutators+queriers+1)

	for w := 0; w < mutators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWorker; i++ {
				id := 1_000_000 + w*perWorker + i
				tr := freshTraj(rng, id)
				versions.Store(id, tr)
				if err := idx.Insert(ctx, []*Trajectory{tr}, WithAutoCompact(DefaultCompactFraction)); err != nil {
					errCh <- fmt.Errorf("mutator %d insert: %w", w, err)
					return
				}
				if i%3 == 0 {
					if _, err := idx.Delete(ctx, []int{id}); err != nil {
						errCh <- fmt.Errorf("mutator %d delete: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := idx.CompactNow(ctx); err != nil {
				errCh <- fmt.Errorf("compactor: %w", err)
				return
			}
		}
	}()
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < perWorker; i++ {
				q := freshTraj(rng, -1)
				k := 1 + rng.Intn(20)
				res, err := idx.Search(ctx, q, k)
				if err != nil {
					errCh <- fmt.Errorf("querier %d: %w", w, err)
					return
				}
				seen := map[int]bool{}
				for j, r := range res {
					if dead[r.ID] {
						errCh <- fmt.Errorf("querier %d: pre-deleted id %d returned", w, r.ID)
						return
					}
					if seen[r.ID] {
						errCh <- fmt.Errorf("querier %d: duplicate id %d", w, r.ID)
						return
					}
					seen[r.ID] = true
					if j > 0 && res[j-1].Dist > r.Dist {
						errCh <- fmt.Errorf("querier %d: unsorted results %v", w, res)
						return
					}
					v, ok := versions.Load(r.ID)
					if !ok {
						errCh <- fmt.Errorf("querier %d: unknown id %d", w, r.ID)
						return
					}
					exact := dist.Distance(m, q.Points, v.(*Trajectory).Points, params)
					if d := exact - r.Dist; d > 1e-9 || d < -1e-9 {
						errCh <- fmt.Errorf("querier %d: id %d dist %v, exact %v", w, r.ID, r.Dist, exact)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiesce: compact, then the final state must match the oracle
	// over the final live set exactly.
	if err := idx.CompactNow(ctx); err != nil {
		t.Fatal(err)
	}
	live := oracle.NewSet(nil)
	versions.Range(func(_, v any) bool {
		live.Insert(v.(*Trajectory))
		return true
	})
	// Remove everything the run deleted: pre-deleted ids plus each
	// mutator's i%3 victims.
	live.Delete(preDeleted...)
	for w := 0; w < mutators; w++ {
		for i := 0; i < perWorker; i += 3 {
			live.Delete(1_000_000 + w*perWorker + i)
		}
	}
	if got := idx.Stats().Trajectories; got != live.Len() {
		t.Fatalf("final live count %d, oracle %d", got, live.Len())
	}
	q := freshTraj(rand.New(rand.NewSource(7)), -1)
	want := live.TopK(m, params, q.Points, 15)
	got, err := idx.Search(ctx, q, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("final query: %d results, oracle %d", len(got), len(want))
	}
	for i := range got {
		if d := got[i].Dist - want[i].Dist; d > 1e-9 || d < -1e-9 {
			t.Fatalf("final query rank %d: %v, oracle %v", i, got[i], want[i])
		}
	}

	// No goroutine may outlive the race; the deadline-aware settle
	// replaces the fixed 3s sleep loop that flaked under -race load.
	leakcheck.Settle(t, base)
}
