// Package repose is a distributed in-memory framework for top-k
// trajectory similarity search, reproducing "REPOSE: Distributed
// Top-k Trajectory Similarity Search with Local Reference Point
// Tries" (ICDE 2021).
//
// Trajectories are discretized onto a Z-order grid and organized in
// per-partition Reference Point Tries (RP-Tries) searched best-first
// with one-side, two-side, and pivot-based lower bounds. A
// heterogeneous global partitioning strategy spreads similar
// trajectories across partitions so every core contributes to every
// query. Six similarity measures are supported: Hausdorff, Frechet,
// DTW, LCSS, EDR, and ERP.
//
// Quick start:
//
//	idx, err := repose.Build(trajectories, repose.Options{Measure: repose.Hausdorff})
//	results, err := idx.Search(query, 10)
package repose

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repose/internal/cluster"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/partition"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// Point is a trajectory sample point.
type Point = geo.Point

// Trajectory is a time-ordered point sequence with an id.
type Trajectory = geo.Trajectory

// Measure identifies a similarity measure.
type Measure = dist.Measure

// The supported similarity measures.
const (
	Hausdorff = dist.Hausdorff
	Frechet   = dist.Frechet
	DTW       = dist.DTW
	LCSS      = dist.LCSS
	EDR       = dist.EDR
	ERP       = dist.ERP
)

// Result is one search hit: a trajectory id and its distance to the
// query, ascending by (distance, id).
type Result = topk.Item

// Strategy selects the global partitioning strategy.
type Strategy = partition.Strategy

// The available partitioning strategies.
const (
	Heterogeneous = partition.Heterogeneous
	Homogeneous   = partition.Homogeneous
	Random        = partition.Random
)

// Options configures Build. The zero value picks the paper's
// defaults: Hausdorff distance, heterogeneous partitioning, one
// partition per core, δ = span/64, Np = 5 pivots, and the trie
// optimizations enabled.
type Options struct {
	// Measure is the similarity measure (default Hausdorff).
	Measure Measure

	// Delta is the grid cell side δ. 0 derives span/64. Table V
	// shows query time is sensitive to δ; tune it per dataset.
	Delta float64

	// Partitions is the number of global partitions (default: one
	// per CPU, the paper's one-partition-per-core setup).
	Partitions int

	// Strategy is the global partitioning strategy (default
	// Heterogeneous, Section V-B).
	Strategy Strategy

	// Pivots is the number of pivot trajectories Np (default 5;
	// Table VI). Pivots apply only to metric measures. Negative
	// disables pivot pruning.
	Pivots int

	// Epsilon is the matching threshold for LCSS and EDR
	// (default: 1% of the region diameter).
	Epsilon float64

	// NoRearrange disables the z-value re-arrangement optimization
	// (Section III-C); it is on by default for order-independent
	// measures and ignored otherwise.
	NoRearrange bool

	// Succinct compresses each partition trie into the two-tier
	// bitmap/byte-sequence layout (Section III-B).
	Succinct bool

	// Workers caps build/query parallelism (default GOMAXPROCS).
	Workers int

	// Seed drives pivot selection, sampling, and random
	// partitioning (default 1).
	Seed int64
}

// Index is a built distributed index (in-process engine).
type Index struct {
	eng    *cluster.Local
	region geo.Rect
	opts   Options
}

// Stats summarizes a built index.
type Stats struct {
	Trajectories int
	Partitions   int
	IndexBytes   int
	BuildTime    time.Duration
}

// normalize fills option defaults against a dataset region.
func (o Options) normalize(region geo.Rect) Options {
	if o.Delta <= 0 {
		span := region.Max.X - region.Min.X
		if dy := region.Max.Y - region.Min.Y; dy > span {
			span = dy
		}
		o.Delta = span / 64
	}
	if o.Partitions <= 0 {
		o.Partitions = defaultPartitions()
	}
	if o.Pivots == 0 {
		o.Pivots = 5
	}
	if o.Epsilon <= 0 {
		o.Epsilon = dist.DefaultParams(region).Epsilon
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// spec converts options to the engine's index spec.
func (o Options) spec(ds []*Trajectory, region geo.Rect) cluster.IndexSpec {
	params := dist.Params{Epsilon: o.Epsilon, Gap: region.Min}
	var pivots []*Trajectory
	if o.Pivots > 0 && o.Measure.IsMetric() {
		pivots = pivot.Select(ds, o.Pivots, pivot.DefaultGroups, o.Measure, params, o.Seed)
	}
	return cluster.IndexSpec{
		Algorithm: cluster.REPOSE,
		Measure:   o.Measure,
		Params:    params,
		Region:    region,
		Delta:     o.Delta,
		Pivots:    pivots,
		Optimize:  !o.NoRearrange && o.Measure.OrderIndependent(),
		Succinct:  o.Succinct,
		Seed:      o.Seed,
	}
}

// Build partitions ds and builds one RP-Trie per partition.
func Build(ds []*Trajectory, opts Options) (*Index, error) {
	if len(ds) == 0 {
		return nil, errors.New("repose: empty dataset")
	}
	region := geo.EnclosingSquare(ds, 0)
	opts = opts.normalize(region)
	parts, err := partitionDataset(ds, opts, region)
	if err != nil {
		return nil, err
	}
	eng, err := cluster.BuildLocal(opts.spec(ds, region), parts, opts.Workers)
	if err != nil {
		return nil, err
	}
	return &Index{eng: eng, region: region, opts: opts}, nil
}

func partitionDataset(ds []*Trajectory, opts Options, region geo.Rect) ([][]*Trajectory, error) {
	g, err := grid.New(region, opts.Delta)
	if err != nil {
		return nil, fmt.Errorf("repose: %w", err)
	}
	assign, err := partition.Assign(opts.Strategy, ds, g, opts.Partitions, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("repose: %w", err)
	}
	return partition.Split(ds, assign, opts.Partitions), nil
}

// Search returns the k trajectories most similar to q.
func (x *Index) Search(q *Trajectory, k int) ([]Result, error) {
	if q == nil {
		return nil, errors.New("repose: nil query")
	}
	return x.SearchPoints(q.Points, k)
}

// SearchPoints is Search on a raw point sequence.
func (x *Index) SearchPoints(q []Point, k int) ([]Result, error) {
	if len(q) == 0 {
		return nil, errors.New("repose: empty query")
	}
	if k <= 0 {
		return nil, errors.New("repose: k must be positive")
	}
	return x.eng.Search(q, k)
}

// SearchRadius returns every indexed trajectory within the given
// distance of q, ascending by (distance, id) — the range-query
// counterpart of Search. Not available on Succinct indexes.
func (x *Index) SearchRadius(q *Trajectory, radius float64) ([]Result, error) {
	if q == nil || len(q.Points) == 0 {
		return nil, errors.New("repose: empty query")
	}
	if radius < 0 {
		return nil, errors.New("repose: negative radius")
	}
	return x.eng.SearchRadius(q.Points, radius)
}

// Stats reports index statistics.
func (x *Index) Stats() Stats {
	return Stats{
		Trajectories: x.eng.Len(),
		Partitions:   x.eng.NumPartitions(),
		IndexBytes:   x.eng.IndexSizeBytes(),
		BuildTime:    x.eng.BuildTime(),
	}
}

// Measureless helpers.

// Distance computes the exact distance between two trajectories
// under the given measure, using default parameters derived from the
// pair's joint bounding region.
func Distance(m Measure, a, b *Trajectory) float64 {
	region := geo.EnclosingSquare([]*Trajectory{a, b}, 0)
	p := dist.DefaultParams(region)
	return dist.Distance(m, a.Points, b.Points, p)
}

// DistanceWith computes the exact distance with explicit LCSS/EDR ε
// and ERP gap point.
func DistanceWith(m Measure, a, b *Trajectory, epsilon float64, gap Point) float64 {
	return dist.Distance(m, a.Points, b.Points, dist.Params{Epsilon: epsilon, Gap: gap})
}

// ClusterIndex is a built distributed index backed by worker
// processes over TCP.
type ClusterIndex struct {
	remote *cluster.Remote
	opts   Options
}

// BuildCluster ships the partitions to the given worker addresses
// (host:port, one per worker process started with ServeWorker or the
// repose-worker binary) and builds remotely.
func BuildCluster(ds []*Trajectory, opts Options, workers []string) (*ClusterIndex, error) {
	if len(ds) == 0 {
		return nil, errors.New("repose: empty dataset")
	}
	region := geo.EnclosingSquare(ds, 0)
	opts = opts.normalize(region)
	parts, err := partitionDataset(ds, opts, region)
	if err != nil {
		return nil, err
	}
	remote, err := cluster.BuildRemote(opts.spec(ds, region), parts, workers)
	if err != nil {
		return nil, err
	}
	return &ClusterIndex{remote: remote, opts: opts}, nil
}

// Search returns the k most similar trajectories, merging worker-
// local results.
func (c *ClusterIndex) Search(q *Trajectory, k int) ([]Result, error) {
	if q == nil || len(q.Points) == 0 {
		return nil, errors.New("repose: empty query")
	}
	if k <= 0 {
		return nil, errors.New("repose: k must be positive")
	}
	return c.remote.Search(q.Points, k)
}

// Stats reports cluster index statistics.
func (c *ClusterIndex) Stats() Stats {
	return Stats{
		Trajectories: c.remote.Len(),
		Partitions:   c.remote.NumPartitions(),
		IndexBytes:   c.remote.IndexSizeBytes(),
		BuildTime:    c.remote.BuildTime(),
	}
}

// Close releases the connections to the workers (the workers keep
// running).
func (c *ClusterIndex) Close() { c.remote.Close() }

// ServeWorker runs a worker process serving the given address until
// the listener fails. It reports the bound address through onReady
// (useful with ":0") before blocking.
func ServeWorker(addr string, onReady func(boundAddr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	return cluster.Serve(ln, cluster.NewWorker())
}
