// Package repose is a distributed in-memory framework for top-k
// trajectory similarity search, reproducing "REPOSE: Distributed
// Top-k Trajectory Similarity Search with Local Reference Point
// Tries" (ICDE 2021).
//
// Trajectories are discretized onto a Z-order grid and organized in
// per-partition Reference Point Tries (RP-Tries) searched best-first
// with one-side, two-side, and pivot-based lower bounds. A
// heterogeneous global partitioning strategy spreads similar
// trajectories across partitions so every core contributes to every
// query. Six similarity measures are supported: Hausdorff, Frechet,
// DTW, LCSS, EDR, and ERP.
//
// One Index type fronts both deployments — in-process partitions
// (Build) and TCP worker processes (BuildRemote) — behind the same
// context-aware query surface:
//
//	idx, err := repose.Build(trajectories, repose.Options{Measure: repose.Hausdorff})
//	results, err := idx.Search(ctx, query, 10)
//
// Cancelling ctx (or letting its deadline pass) stops partition scans
// mid-flight on either backend. Per-query behaviour is tuned with
// functional options: WithReport captures a QueryReport, WithPartitions
// restricts the query to a partition subset, WithoutPivots disables
// the pivot lower bound.
package repose

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"repose/internal/cluster"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/partition"
	"repose/internal/pivot"
	"repose/internal/rptrie"
	"repose/internal/topk"
)

// Point is a trajectory sample point.
type Point = geo.Point

// Trajectory is a time-ordered point sequence with an id.
type Trajectory = geo.Trajectory

// Measure identifies a similarity measure.
type Measure = dist.Measure

// The supported similarity measures.
const (
	Hausdorff = dist.Hausdorff
	Frechet   = dist.Frechet
	DTW       = dist.DTW
	LCSS      = dist.LCSS
	EDR       = dist.EDR
	ERP       = dist.ERP
)

// Result is one search hit: a trajectory id and its distance to the
// query, ascending by (distance, id).
type Result = topk.Item

// QueryReport describes one distributed query's execution: wall time,
// per-partition compute, and the straggler ratio (Imbalance).
// Capture one with WithReport.
type QueryReport = cluster.QueryReport

// BatchReport describes one batch execution: makespan, per-query
// completion times, and total partition compute. Capture one with
// WithBatchReport.
type BatchReport = cluster.BatchReport

// Layout selects the in-memory representation of each partition's
// RP-Trie. All layouts answer top-k queries bit-identically; they
// trade memory for search speed and feature coverage:
//
//   - LayoutPointer: the plain pointer trie. Fastest to mutate,
//     largest footprint, supports SearchRadius.
//   - LayoutSuccinct: the two-tier bitmap layout (Section III-B).
//     Smaller, near-pointer search speed, no SearchRadius.
//   - LayoutCompressed: the trit-array (tSTAT-style) layout —
//     rank/select bitvectors, packed node metadata, quantized pivot
//     ranges. Smallest by a wide margin, search within a small factor
//     of succinct, supports SearchRadius, and ships the cheapest
//     failover snapshots.
type Layout = rptrie.Layout

// The available per-partition index layouts.
const (
	LayoutPointer    = rptrie.LayoutPointer
	LayoutSuccinct   = rptrie.LayoutSuccinct
	LayoutCompressed = rptrie.LayoutCompressed
)

// ParseLayout maps a layout name ("pointer"/"trie", "succinct",
// "compressed"/"tstat", or empty for the default) to its Layout. The
// repose-worker and repose-query binaries use it for their -layout
// flags.
func ParseLayout(s string) (Layout, error) { return rptrie.ParseLayout(s) }

// Strategy selects the global partitioning strategy.
type Strategy = partition.Strategy

// The available partitioning strategies.
const (
	Heterogeneous = partition.Heterogeneous
	Homogeneous   = partition.Homogeneous
	Random        = partition.Random
)

// Options configures Build. The zero value picks the paper's
// defaults: Hausdorff distance, heterogeneous partitioning, one
// partition per core, δ = span/64, Np = 5 pivots, and the trie
// optimizations enabled.
type Options struct {
	// Measure is the similarity measure (default Hausdorff).
	Measure Measure

	// Delta is the grid cell side δ. 0 derives span/64. Table V
	// shows query time is sensitive to δ; tune it per dataset.
	Delta float64

	// Partitions is the number of global partitions (default: one
	// per CPU, the paper's one-partition-per-core setup).
	Partitions int

	// Strategy is the global partitioning strategy (default
	// Heterogeneous, Section V-B).
	Strategy Strategy

	// Pivots is the number of pivot trajectories Np (default 5;
	// Table VI). Pivots apply only to metric measures. Negative
	// disables pivot pruning.
	Pivots int

	// Epsilon is the matching threshold for LCSS and EDR
	// (default: 1% of the region diameter).
	Epsilon float64

	// NoRearrange disables the z-value re-arrangement optimization
	// (Section III-C); it is on by default for order-independent
	// measures and ignored otherwise.
	NoRearrange bool

	// Layout selects each partition's index representation (default
	// LayoutPointer). WithLayout sets it as a build option. Succinct
	// indexes do not support SearchRadius: it returns
	// ErrSuccinctUnsupported.
	Layout Layout

	// Succinct compresses each partition trie into the two-tier
	// bitmap/byte-sequence layout (Section III-B).
	//
	// Deprecated: set Layout to LayoutSuccinct. Honored only when
	// Layout is LayoutPointer (the zero value).
	Succinct bool

	// Workers caps build/query parallelism (default GOMAXPROCS).
	Workers int

	// Seed drives pivot selection, sampling, and random
	// partitioning (default 1).
	Seed int64

	// Replication is the remote deployment's replication factor:
	// each partition is built on this many distinct worker processes
	// and queries fail over between them when a worker dies (see the
	// README's "Fault tolerance" section). 0 or 1 disables
	// replication; BuildRemote rejects a factor above the worker
	// count. Ignored by the in-process engine. WithReplication sets
	// it as a build option.
	Replication int

	// Failover tunes the remote engine's failure handling (circuit
	// breaker threshold, probe cadence, per-attempt timeout, hedging).
	// Zero fields take defaults; ignored by the in-process engine.
	Failover FailoverConfig

	// RebalanceInterval, when positive, runs the remote engine's load
	// rebalancer on this cadence in the background: whenever one
	// worker's cumulative scan load exceeds 1.5x the least-loaded
	// worker's, the hottest movable partition migrates there with no
	// read downtime (see Index.Rebalance). Ignored by the in-process
	// engine. WithAutoRebalance sets it as a build option.
	RebalanceInterval time.Duration

	// DurableDir, when set, backs every partition of the in-process
	// engine with a disk store (checkpoint + write-ahead log) under
	// this directory, recoverable later with OpenDurable. Mutations
	// then return only after their log record is fsynced. Ignored by
	// BuildRemote — workers persist via repose-worker -data-dir.
	// WithDurableDir sets it as a build option.
	DurableDir string
}

// FailoverConfig tunes a remote index's failure handling; see
// Options.Failover. The zero value selects defaults.
type FailoverConfig = cluster.FailoverConfig

// WorkerHealth is one worker's health snapshot; see Index.Health.
type WorkerHealth = cluster.WorkerHealth

// RebalanceReport describes one rebalancing decision; see
// Index.Rebalance.
type RebalanceReport = cluster.RebalanceReport

// PartitionLoad is one partition's accumulated load profile — query
// count, refinement work, p99 scan latency, and the learned
// reward-per-probe score; see Index.LoadStats.
type PartitionLoad = cluster.PartitionLoad

// BuildOption overrides one Options field at build time, for settings
// that read better at the call site than in the struct literal.
type BuildOption func(*Options)

// WithReplication places each partition on n distinct workers and
// fails queries over between them — the remote deployment's fault
// tolerance knob:
//
//	idx, err := repose.BuildRemote(ds, repose.Options{}, addrs, repose.WithReplication(2))
func WithReplication(n int) BuildOption {
	return func(o *Options) { o.Replication = n }
}

// WithFailover sets the failover tuning as a build option.
func WithFailover(fc FailoverConfig) BuildOption {
	return func(o *Options) { o.Failover = fc }
}

// WithAutoRebalance runs the remote engine's load rebalancer every
// interval in the background (see Options.RebalanceInterval):
//
//	idx, err := repose.BuildRemote(ds, repose.Options{}, addrs, repose.WithAutoRebalance(30*time.Second))
func WithAutoRebalance(interval time.Duration) BuildOption {
	return func(o *Options) { o.RebalanceInterval = interval }
}

// WithLayout selects the per-partition index layout as a build option:
//
//	idx, err := repose.Build(ds, repose.Options{}, repose.WithLayout(repose.LayoutCompressed))
func WithLayout(l Layout) BuildOption {
	return func(o *Options) { o.Layout = l }
}

// layout resolves the effective layout, honoring the deprecated
// Succinct flag when Layout was left at its zero value.
func (o Options) layout() Layout {
	if o.Layout == LayoutPointer && o.Succinct {
		return LayoutSuccinct
	}
	return o.Layout
}

// Engine is the backend executing an Index's queries. It is a sealed
// interface with exactly two implementations: the in-process engine
// (Build) and the TCP remote engine (BuildRemote). Both answer the
// same query surface identically.
type Engine interface {
	// String names the backend: "local" or "remote".
	String() string
	// exec seals the interface and yields the underlying engine.
	exec() cluster.Engine
}

// engineLocal runs all partitions in-process on goroutines.
type engineLocal struct{ c *cluster.Local }

func (e engineLocal) String() string       { return "local" }
func (e engineLocal) exec() cluster.Engine { return e.c }

// engineRemote queries partitions owned by worker processes over TCP.
type engineRemote struct{ r *cluster.Remote }

func (e engineRemote) String() string       { return "remote" }
func (e engineRemote) exec() cluster.Engine { return e.r }

// Index is a built distributed index. The same query methods work
// identically whichever Engine backs it. An Index is live: Insert,
// Delete, and Upsert change its contents online, with snapshot
// isolation against concurrent queries (see the package README's
// "Online updates" section).
type Index struct {
	eng    Engine
	region geo.Rect
	opts   Options
	closed atomic.Bool

	// gens pins queries to the generations this Index's own mutations
	// produced (read-your-writes): nil until the first mutation, then
	// one entry per partition, attached to every query.
	genMu sync.Mutex
	gens  []uint64

	// rebalStop ends the auto-rebalance loop (WithAutoRebalance);
	// nil when no loop runs.
	rebalStop chan struct{}
	rebalWG   sync.WaitGroup
}

// Stats summarizes a built index.
type Stats struct {
	Trajectories int
	Partitions   int
	IndexBytes   int
	BuildTime    time.Duration
	// Layout is the per-partition index representation the index was
	// built with.
	Layout Layout
	// PartitionIndexBytes is each partition's index footprint, indexed
	// by partition id; IndexBytes is its sum. On a remote index the
	// values are the sizes workers declared at build time.
	PartitionIndexBytes []int
	// Generations is the current per-partition generation vector, as
	// returned by Index.Generations.
	Generations []uint64
	// PartitionLoads is the per-partition load profile accumulated
	// since build, as returned by Index.LoadStats.
	PartitionLoads []PartitionLoad
}

// normalize fills option defaults against a dataset region.
func (o Options) normalize(region geo.Rect) Options {
	if o.Delta <= 0 {
		span := region.Max.X - region.Min.X
		if dy := region.Max.Y - region.Min.Y; dy > span {
			span = dy
		}
		o.Delta = span / 64
	}
	if o.Partitions <= 0 {
		o.Partitions = defaultPartitions()
	}
	if o.Pivots == 0 {
		o.Pivots = 5
	}
	if o.Epsilon <= 0 {
		o.Epsilon = dist.DefaultParams(region).Epsilon
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// spec converts options to the engine's index spec.
func (o Options) spec(ds []*Trajectory, region geo.Rect) cluster.IndexSpec {
	params := dist.Params{Epsilon: o.Epsilon, Gap: region.Min}
	var pivots []*Trajectory
	if o.Pivots > 0 && o.Measure.IsMetric() {
		pivots = pivot.Select(ds, o.Pivots, pivot.DefaultGroups, o.Measure, params, o.Seed)
	}
	return cluster.IndexSpec{
		Algorithm: cluster.REPOSE,
		Measure:   o.Measure,
		Params:    params,
		Region:    region,
		Delta:     o.Delta,
		Pivots:    pivots,
		Optimize:  !o.NoRearrange && o.Measure.OrderIndependent(),
		Layout:    o.layout(),
		Strategy:  o.Strategy,
		Seed:      o.Seed,
		Replicas:  o.Replication,
	}
}

// Build partitions ds and builds one RP-Trie per partition,
// in-process. Replication options are ignored: the in-process engine
// has no worker to lose.
func Build(ds []*Trajectory, opts Options, extra ...BuildOption) (*Index, error) {
	for _, bo := range extra {
		bo(&opts)
	}
	region, parts, opts, err := prepare(ds, opts)
	if err != nil {
		return nil, err
	}
	spec := opts.spec(ds, region)
	if opts.DurableDir != "" {
		eng, err := cluster.BuildLocalDurable(spec, parts, opts.Workers, opts.DurableDir)
		if err != nil {
			return nil, err
		}
		if err := writeManifest(opts.DurableDir, durableManifest{Opts: opts, Region: region, Spec: spec}); err != nil {
			eng.Close()
			return nil, err
		}
		return &Index{eng: engineLocal{eng}, region: region, opts: opts}, nil
	}
	eng, err := cluster.BuildLocal(spec, parts, opts.Workers)
	if err != nil {
		return nil, err
	}
	return &Index{eng: engineLocal{eng}, region: region, opts: opts}, nil
}

// BuildRemote ships the partitions to the given worker addresses
// (host:port, one per worker process started with ServeWorker or the
// repose-worker binary) and builds remotely. The returned Index
// answers the exact same query surface as a Build index. With
// WithReplication(n) (or Options.Replication) each partition lives on
// n distinct workers and queries transparently fail over when a
// worker dies; a dead worker restarted with `repose-worker -rejoin`
// is streamed its state back automatically.
func BuildRemote(ds []*Trajectory, opts Options, workers []string, extra ...BuildOption) (*Index, error) {
	for _, bo := range extra {
		bo(&opts)
	}
	region, parts, opts, err := prepare(ds, opts)
	if err != nil {
		return nil, err
	}
	remote, err := cluster.BuildRemote(opts.spec(ds, region), parts, workers)
	if err != nil {
		return nil, err
	}
	if opts.Failover != (FailoverConfig{}) {
		remote.SetFailover(opts.Failover)
	}
	x := &Index{eng: engineRemote{remote}, region: region, opts: opts}
	if opts.RebalanceInterval > 0 {
		x.rebalStop = make(chan struct{})
		x.rebalWG.Add(1)
		go func() {
			defer x.rebalWG.Done()
			t := time.NewTicker(opts.RebalanceInterval)
			defer t.Stop()
			for {
				select {
				case <-x.rebalStop:
					return
				case <-t.C:
					// Best-effort: a failed or declined migration is
					// retried next tick.
					_, _ = remote.Rebalance(context.Background())
				}
			}
		}()
	}
	return x, nil
}

// Health reports per-worker availability: circuit state and how many
// partition replicas await restore. A local index reports a synthetic
// single-entry snapshot (addr "local", never down) so health-gated
// consumers — /healthz endpoints, load balancers — treat both
// backends identically instead of special-casing a nil slice.
func (x *Index) Health() []WorkerHealth {
	if er, ok := x.eng.(engineRemote); ok {
		return er.r.Health()
	}
	if x.closed.Load() {
		return []WorkerHealth{{Addr: "local", Down: true}}
	}
	return []WorkerHealth{{Addr: "local"}}
}

// Rebalance runs one load-rebalancing pass on a remote index: when
// the hottest worker's cumulative scan load exceeds 1.5x the
// least-loaded worker's, the hottest movable partition's replica
// migrates from the former to the latter — snapshot, restore, owner
// flip — with no read downtime (queries keep scattering throughout;
// mutations pause for the transfer). The report says whether anything
// moved. On a local index it returns an empty report: there is only
// one process to balance.
func (x *Index) Rebalance(ctx context.Context) (RebalanceReport, error) {
	if x.closed.Load() {
		return RebalanceReport{}, ErrClosed
	}
	er, ok := x.eng.(engineRemote)
	if !ok {
		return RebalanceReport{}, nil
	}
	rep, err := er.r.Rebalance(ctx)
	return rep, translate(err)
}

// SplitPartition carves the upper half (by trajectory id) of
// partition pid into a new partition and returns the new partition's
// id. The split is online on both backends: the new partition is
// installed and serving before the moved ids are pruned from the
// source, and the query merge deduplicates the overlap window, so no
// concurrent query ever misses or double-counts a trajectory. Only
// mutable (REPOSE-layout) indexes support it.
func (x *Index) SplitPartition(ctx context.Context, pid int) (int, error) {
	if x.closed.Load() {
		return 0, ErrClosed
	}
	var newPid int
	var err error
	switch e := x.eng.(type) {
	case engineRemote:
		newPid, err = e.r.SplitPartition(ctx, pid)
	case engineLocal:
		newPid, err = e.c.SplitPartition(ctx, pid)
	default:
		return 0, ErrImmutableIndex
	}
	return newPid, translate(err)
}

// LoadStats reports the per-partition load profile the engine has
// accumulated since build: query counts, exact-refinement work, p99
// scan latency, and the learned reward-per-probe score that
// WithProbeBudget orders the scatter by. The rebalancer reads the
// same numbers.
func (x *Index) LoadStats() []PartitionLoad {
	if ls, ok := x.eng.exec().(interface{ LoadStats() []PartitionLoad }); ok {
		return ls.LoadStats()
	}
	return nil
}

// Generations snapshots the per-partition generation vector: entry p
// is the authoritative generation of partition p, advanced by every
// Insert/Delete/Upsert/Compact that touches it (0 until then, and
// always 0 for immutable backends). Generations only move forward,
// and a mutation's new generations are visible here by the time the
// mutation call returns — the property that lets an answer cache key
// on this vector for exact invalidation (see internal/serve).
func (x *Index) Generations() []uint64 {
	return x.eng.exec().Generations()
}

// prepare validates the dataset and computes the region, normalized
// options, and global partitioning shared by both builders.
func prepare(ds []*Trajectory, opts Options) (geo.Rect, [][]*Trajectory, Options, error) {
	if len(ds) == 0 {
		return geo.Rect{}, nil, opts, errors.New("repose: empty dataset")
	}
	region := geo.EnclosingSquare(ds, 0)
	opts = opts.normalize(region)
	parts, err := partitionDataset(ds, opts, region)
	if err != nil {
		return geo.Rect{}, nil, opts, err
	}
	return region, parts, opts, nil
}

func partitionDataset(ds []*Trajectory, opts Options, region geo.Rect) ([][]*Trajectory, error) {
	g, err := grid.New(region, opts.Delta)
	if err != nil {
		return nil, fmt.Errorf("repose: %w", err)
	}
	assign, err := partition.Assign(opts.Strategy, ds, g, opts.Partitions, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("repose: %w", err)
	}
	return partition.Split(ds, assign, opts.Partitions), nil
}

// Engine returns the backend executing this index's queries.
func (x *Index) Engine() Engine { return x.eng }

// check runs the validations shared by every query method.
func (x *Index) check(q []Point) error {
	if x.closed.Load() {
		return ErrClosed
	}
	if len(q) == 0 {
		return ErrEmptyQuery
	}
	return nil
}

func points(q *Trajectory) []Point {
	if q == nil {
		return nil
	}
	return q.Points
}

// translate maps engine-level errors to the facade's sentinels: a
// query that races Close past the closed flag still reports ErrClosed,
// whether it lost the race before dispatch (cluster.ErrClosed) or
// mid-RPC (the closed client surfaces rpc.ErrShutdown).
func translate(err error) error {
	if errors.Is(err, cluster.ErrClosed) || errors.Is(err, rpc.ErrShutdown) {
		return ErrClosed
	}
	return err
}

// Search returns the k trajectories most similar to q. It works
// identically on local and remote backends; ctx cancels or deadlines
// the query mid-partition on either.
func (x *Index) Search(ctx context.Context, q *Trajectory, k int, opts ...QueryOption) ([]Result, error) {
	if err := x.check(points(q)); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, ErrBadK
	}
	qc := applyQueryOptions(opts)
	items, rep, err := x.eng.exec().Search(ctx, q.Points, k, x.clusterOptions(qc))
	if qc.report != nil {
		*qc.report = rep
	}
	return items, translate(err)
}

// SearchSub returns the k trajectories whose best-matching contiguous
// segment is most similar to q — subtrajectory search. Each Result's
// [Start, End) names the matched half-open sample range of that
// trajectory; distances are exact segment distances under the index's
// measure. Compose with WithSegmentLength to bound the segment size
// and WithTimeWindow to restrict matching to a time window. Refined
// queries require an RP-Trie layout (any of the three); baseline
// algorithms reject them.
func (x *Index) SearchSub(ctx context.Context, q *Trajectory, k int, opts ...QueryOption) ([]Result, error) {
	if err := x.check(points(q)); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, ErrBadK
	}
	qc := applyQueryOptions(opts)
	qc.sub = true
	items, rep, err := x.eng.exec().Search(ctx, q.Points, k, x.clusterOptions(qc))
	if qc.report != nil {
		*qc.report = rep
	}
	return items, translate(err)
}

// SearchRadius returns every indexed trajectory within the given
// distance of q, ascending by (distance, id) — the range-query
// counterpart of Search. Succinct indexes return
// ErrSuccinctUnsupported.
func (x *Index) SearchRadius(ctx context.Context, q *Trajectory, radius float64, opts ...QueryOption) ([]Result, error) {
	if err := x.check(points(q)); err != nil {
		return nil, err
	}
	if radius < 0 {
		return nil, ErrBadRadius
	}
	if x.opts.layout() == LayoutSuccinct {
		return nil, ErrSuccinctUnsupported
	}
	qc := applyQueryOptions(opts)
	items, rep, err := x.eng.exec().SearchRadius(ctx, q.Points, radius, x.clusterOptions(qc))
	if qc.report != nil {
		*qc.report = rep
	}
	return items, translate(err)
}

// SearchBatch answers all queries at once over one shared worker
// pool, returning one result list per query (indexed like qs). A
// batch keeps every core busy even when single queries are skewed;
// capture a BatchReport with WithBatchReport to observe the makespan.
func (x *Index) SearchBatch(ctx context.Context, qs []*Trajectory, k int, opts ...QueryOption) ([][]Result, error) {
	if x.closed.Load() {
		return nil, ErrClosed
	}
	if k <= 0 {
		return nil, ErrBadK
	}
	qpts := make([][]Point, len(qs))
	for i, q := range qs {
		if q == nil || len(q.Points) == 0 {
			return nil, fmt.Errorf("%w (batch query %d)", ErrEmptyQuery, i)
		}
		qpts[i] = q.Points
	}
	qc := applyQueryOptions(opts)
	items, rep, err := x.eng.exec().SearchBatch(ctx, qpts, k, x.clusterOptions(qc))
	if qc.batchReport != nil {
		*qc.batchReport = rep
	}
	return items, translate(err)
}

// Stats reports index statistics.
func (x *Index) Stats() Stats {
	eng := x.eng.exec()
	perPart := eng.PartitionIndexBytes()
	total := 0
	for _, b := range perPart {
		total += b
	}
	return Stats{
		Trajectories:        eng.Len(),
		Partitions:          eng.NumPartitions(),
		IndexBytes:          total,
		BuildTime:           eng.BuildTime(),
		Layout:              x.opts.layout(),
		PartitionIndexBytes: perPart,
		Generations:         eng.Generations(),
		PartitionLoads:      x.LoadStats(),
	}
}

// Close releases the engine's resources; for a remote index, the
// worker connections (the workers keep running). Queries after Close
// return ErrClosed. Close is idempotent.
func (x *Index) Close() error {
	if x.closed.Swap(true) {
		return nil
	}
	if x.rebalStop != nil {
		close(x.rebalStop)
		x.rebalWG.Wait()
	}
	return x.eng.exec().Close()
}

// Measureless helpers.

// Distance computes the exact distance between two trajectories
// under the given measure, using default parameters derived from the
// pair's joint bounding region.
func Distance(m Measure, a, b *Trajectory) float64 {
	region := geo.EnclosingSquare([]*Trajectory{a, b}, 0)
	p := dist.DefaultParams(region)
	return dist.Distance(m, a.Points, b.Points, p)
}

// DistanceWith computes the exact distance with explicit LCSS/EDR ε
// and ERP gap point.
func DistanceWith(m Measure, a, b *Trajectory, epsilon float64, gap Point) float64 {
	return dist.Distance(m, a.Points, b.Points, dist.Params{Epsilon: epsilon, Gap: gap})
}

// ProtocolVersion is the driver↔worker wire protocol version spoken
// by this build; a worker rejects drivers speaking another version.
const ProtocolVersion = cluster.ProtocolVersion

// ServeWorker runs a worker process serving the given address until
// the listener fails. It reports the bound address through onReady
// (useful with ":0") before blocking.
func ServeWorker(addr string, onReady func(boundAddr string)) error {
	return ServeWorkerContext(context.Background(), addr, onReady)
}

// ServeWorkerContext is ServeWorker with lifecycle control: when ctx
// is cancelled the listener closes and the call returns ctx's error,
// giving worker binaries a clean SIGINT shutdown path.
func ServeWorkerContext(ctx context.Context, addr string, onReady func(boundAddr string)) error {
	return ServeWorkerOptions(ctx, addr, WorkerOptions{}, onReady)
}

// WorkerOptions configures a served worker process.
type WorkerOptions struct {
	// Rejoin marks this process as the replacement for a worker that
	// died: it starts empty and expects the driver's failure detector
	// to stream partition state back into it (Worker.Restore). Until
	// that happens its queries fail with an "awaiting state restore"
	// diagnostic instead of the generic "no partitions", so a
	// misrouted query during recovery is distinguishable from a
	// misconfigured cluster. The repose-worker binary sets it with
	// -rejoin.
	Rejoin bool

	// DataDir backs every REPOSE partition this worker builds with a
	// durable store under DataDir/p<pid>. A worker restarted on the
	// same directory recovers its partitions from their own
	// write-ahead logs before serving, so the driver re-admits it
	// without streaming state from a peer as long as the recovered
	// generations are current. The repose-worker binary sets it with
	// -data-dir.
	DataDir string

	// Layout, when non-empty, forces every REPOSE partition this
	// worker builds to the named index layout ("pointer", "succinct",
	// "compressed" — see ParseLayout), overriding the driver's build
	// spec. All layouts answer queries bit-identically, so a
	// memory-constrained worker in a heterogeneous fleet can run
	// compressed while its peers run pointer tries. Partitions
	// restored from a peer's snapshot keep the image's layout. The
	// repose-worker binary sets it with -layout.
	Layout string

	// QueryWorkers caps this worker's total concurrent partition
	// scans across all in-flight queries (default GOMAXPROCS per
	// query view). A deliberately low cap makes per-worker saturation
	// observable — the load signal the driver's rebalancer acts on.
	// The repose-worker binary sets it with -query-workers.
	QueryWorkers int
}

// ServeWorkerOptions is ServeWorkerContext with worker configuration.
func ServeWorkerOptions(ctx context.Context, addr string, wo WorkerOptions, onReady func(boundAddr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-done:
		}
	}()
	var forced Layout
	if wo.Layout != "" {
		forced, err = ParseLayout(wo.Layout)
		if err != nil {
			ln.Close()
			return err
		}
	}
	var w *cluster.Worker
	if wo.DataDir != "" {
		w, err = cluster.NewDurableWorker(wo.DataDir, wo.Rejoin)
		if err != nil {
			ln.Close()
			return err
		}
		defer w.CloseData()
	} else if wo.Rejoin {
		w = cluster.NewRejoinWorker()
	} else {
		w = cluster.NewWorker()
	}
	if wo.Layout != "" {
		w.ForceLayout(forced)
	}
	if wo.QueryWorkers > 0 {
		w.SetQueryWorkers(wo.QueryWorkers)
	}
	err = cluster.Serve(ln, w)
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}
