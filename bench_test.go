// Benchmarks regenerating each table and figure of the paper at
// reduced scale, plus ablations of REPOSE's design choices. Every
// BenchmarkTableN / BenchmarkFigN corresponds to the experiment of
// the same number; cmd/repose-bench produces the full row/series
// output, these benches time the same code paths under testing.B.
//
//	go test -bench=. -benchmem .
package repose_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repose"
	"repose/internal/cluster"
	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/partition"
	"repose/internal/pivot"
	"repose/internal/rptrie"
)

// benchScale keeps one bench iteration in the microsecond-to-
// millisecond range; cmd/repose-bench raises it for full runs.
const benchScale = 1.0 / 2048

// benchK is the top-k size used by the query benches.
const benchK = 10

// world is a cached dataset + query workload + engines.
type world struct {
	ds      []*geo.Trajectory
	spec    dataset.Spec
	queries []*geo.Trajectory
	engines map[string]*cluster.Local
}

var (
	worldMu sync.Mutex
	worlds  = map[string]*world{}
)

func getWorld(b *testing.B, name string) *world {
	b.Helper()
	worldMu.Lock()
	defer worldMu.Unlock()
	if w, ok := worlds[name]; ok {
		return w
	}
	spec, err := dataset.ByName(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	ds := dataset.Generate(spec)
	w := &world{
		ds:      ds,
		spec:    spec,
		queries: dataset.Queries(ds, 10, 999),
		engines: map[string]*cluster.Local{},
	}
	worlds[name] = w
	return w
}

// engineOpts parameterizes getEngine caching.
type engineOpts struct {
	algo       cluster.Algorithm
	measure    dist.Measure
	strategy   partition.Strategy
	delta      float64 // 0 → dataset default
	np         int     // 0 → 5, <0 → none
	partitions int     // 0 → 8
	optimize   bool
	layout     rptrie.Layout
	disableLBt bool
	disableLBp bool
}

func defaultDelta(name string) float64 { return dataset.DefaultDelta(name) }

func (w *world) engine(b *testing.B, name string, o engineOpts) *cluster.Local {
	b.Helper()
	key := fmt.Sprintf("%+v", o)
	worldMu.Lock()
	defer worldMu.Unlock()
	if eng, ok := w.engines[key]; ok {
		return eng
	}
	region := w.spec.Region()
	delta := o.delta
	if delta == 0 {
		delta = defaultDelta(name)
	}
	nparts := o.partitions
	if nparts == 0 {
		nparts = 8
	}
	params := dist.Params{Epsilon: dist.DefaultParams(region).Epsilon, Gap: region.Min}
	g, err := grid.New(region, delta)
	if err != nil {
		b.Fatal(err)
	}
	assign, err := partition.Assign(o.strategy, w.ds, g, nparts, 7)
	if err != nil {
		b.Fatal(err)
	}
	parts := partition.Split(w.ds, assign, nparts)
	np := o.np
	if np == 0 {
		np = 5
	}
	var pivots []*geo.Trajectory
	if o.algo == cluster.REPOSE && np > 0 && o.measure.IsMetric() {
		pivots = pivot.Select(w.ds, np, pivot.DefaultGroups, o.measure, params, 13)
	}
	spec := cluster.IndexSpec{
		Algorithm:  o.algo,
		Measure:    o.measure,
		Params:     params,
		Region:     region,
		Delta:      delta,
		Pivots:     pivots,
		Optimize:   o.optimize && o.measure.OrderIndependent(),
		Layout:     o.layout,
		DisableLBt: o.disableLBt,
		DisableLBp: o.disableLBp,
		DFTC:       5,
		DITANL:     32,
		DITAPivot:  4,
		DITAC:      5,
		Seed:       17,
	}
	eng, err := cluster.BuildLocal(spec, parts, 0)
	if err != nil {
		b.Fatal(err)
	}
	w.engines[key] = eng
	return eng
}

func benchQueries(b *testing.B, eng *cluster.Local, queries []*geo.Trajectory, k int) {
	b.Helper()
	b.ReportMetric(float64(eng.IndexSizeBytes())/(1<<20), "index_MB")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, _, err := eng.Search(context.Background(), q.Points, k, cluster.QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrie builds one single-partition pointer-layout trie over the
// whole benchmark dataset — the hot path the zero-allocation
// guarantee is stated for.
func benchTrie(b *testing.B, w *world, name string, m dist.Measure) *rptrie.Trie {
	b.Helper()
	region := w.spec.Region()
	g, err := grid.New(region, defaultDelta(name))
	if err != nil {
		b.Fatal(err)
	}
	params := dist.Params{Epsilon: dist.DefaultParams(region).Epsilon, Gap: region.Min}
	var pivots []*geo.Trajectory
	if m.IsMetric() {
		pivots = pivot.Select(w.ds, 5, pivot.DefaultGroups, m, params, 13)
	}
	trie, err := rptrie.Build(rptrie.Config{
		Measure: m, Params: params, Grid: g, Pivots: pivots,
		Optimize: m.OrderIndependent(),
	}, w.ds)
	if err != nil {
		b.Fatal(err)
	}
	return trie
}

// BenchmarkSearch times the top-k query path — the smoke benchmark CI
// runs with -benchtime=1x so the harness cannot rot. "engine" is the
// public unified API end to end (Build + Search on the local engine);
// "trie" is the single-partition pointer-layout hot path, which must
// report 0 allocs/op in steady state (the pooled scratch warms up
// before the timer starts).
func BenchmarkSearch(b *testing.B) {
	w := getWorld(b, "T-drive")
	b.Run("engine", func(b *testing.B) {
		idx, err := repose.Build(w.ds, repose.Options{Partitions: 8, Delta: defaultDelta("T-drive")})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := w.queries[i%len(w.queries)]
			if _, err := idx.Search(ctx, q, benchK); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trie", func(b *testing.B) {
		trie := benchTrie(b, w, "T-drive", dist.Hausdorff)
		var out []repose.Result
		for _, q := range w.queries { // warm the pooled scratch
			out = trie.SearchAppend(out[:0], q.Points, benchK)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := w.queries[i%len(w.queries)]
			out = trie.SearchAppend(out[:0], q.Points, benchK)
		}
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	})
	// The same hot path through the pluggable Refiner interface with
	// the default whole-trajectory refiner: interface dispatch must not
	// put an allocation on the per-candidate path, so this variant is
	// pinned at 0 allocs/op in CI next to /trie.
	b.Run("refiner", func(b *testing.B) {
		trie := benchTrie(b, w, "T-drive", dist.Hausdorff)
		region := w.spec.Region()
		params := dist.Params{Epsilon: dist.DefaultParams(region).Epsilon, Gap: region.Min}
		opt := rptrie.SearchOptions{Refiner: rptrie.WholeRefiner(dist.Hausdorff, params)}
		ctx := context.Background()
		var out []repose.Result
		var err error
		for _, q := range w.queries { // warm the pooled scratch
			if out, err = trie.SearchAppendContext(ctx, out[:0], q.Points, benchK, opt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := w.queries[i%len(w.queries)]
			if out, err = trie.SearchAppendContext(ctx, out[:0], q.Points, benchK, opt); err != nil {
				b.Fatal(err)
			}
		}
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	})
	// The trit-array layout on the same queries: the cmpRef arena and
	// pooled scratch keep the delta-empty path at 0 allocs/op too
	// (asserted in CI next to /trie), and ns/op here against a
	// Compress()d succinct baseline is the ~1.3× headline bound.
	b.Run("compressed", func(b *testing.B) {
		cmp, err := rptrie.CompressTST(benchTrie(b, w, "T-drive", dist.Hausdorff))
		if err != nil {
			b.Fatal(err)
		}
		var out []repose.Result
		for _, q := range w.queries { // warm the pooled scratch
			out = cmp.SearchAppend(out[:0], q.Points, benchK)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := w.queries[i%len(w.queries)]
			out = cmp.SearchAppend(out[:0], q.Points, benchK)
		}
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	})
	// The two-tier bitmap layout, for the latency comparison.
	b.Run("succinct", func(b *testing.B) {
		suc, err := rptrie.Compress(benchTrie(b, w, "T-drive", dist.Hausdorff))
		if err != nil {
			b.Fatal(err)
		}
		var out []repose.Result
		for _, q := range w.queries { // warm the pooled scratch
			out = suc.SearchAppend(out[:0], q.Points, benchK)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := w.queries[i%len(w.queries)]
			out = suc.SearchAppend(out[:0], q.Points, benchK)
		}
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	})
	// Same hot path with the disk-backed store attached: reads never
	// touch the WAL or buffer pool, so the delta-empty path must stay
	// 0 allocs/op (asserted in CI next to /trie).
	b.Run("durable", func(b *testing.B) {
		d, err := rptrie.WrapDurable(b.TempDir(), benchTrie(b, w, "T-drive", dist.Hausdorff), rptrie.DurableOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		var out []repose.Result
		for _, q := range w.queries { // warm the pooled scratch
			out = d.SearchAppend(out[:0], q.Points, benchK)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := w.queries[i%len(w.queries)]
			out = d.SearchAppend(out[:0], q.Points, benchK)
		}
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	})
}

// BenchmarkSearchAfterInserts times the top-k hot path with a live
// delta overlay: "delta" queries a trie carrying pending inserts and
// tombstones (the overlay's linear scan rides on top of the normal
// best-first search), "compacted" queries the same live set after the
// delta was folded back into the trie — the pair brackets the cost of
// deferring compaction. BenchmarkSearch/trie (above) pins the
// delta-empty static path at 0 allocs/op; this bench documents what a
// non-empty overlay costs.
func BenchmarkSearchAfterInserts(b *testing.B) {
	w := getWorld(b, "T-drive")
	const pending = 64
	run := func(b *testing.B, trie *rptrie.Trie) {
		var out []repose.Result
		for _, q := range w.queries { // warm the pooled scratch
			out = trie.SearchAppend(out[:0], q.Points, benchK)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := w.queries[i%len(w.queries)]
			out = trie.SearchAppend(out[:0], q.Points, benchK)
		}
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	}
	mutate := func(b *testing.B, trie *rptrie.Trie) {
		rng := rand.New(rand.NewSource(77))
		fresh := make([]*geo.Trajectory, pending)
		for i := range fresh {
			src := w.ds[rng.Intn(len(w.ds))]
			fresh[i] = &geo.Trajectory{ID: 1_000_000 + i, Points: src.Points}
		}
		if err := trie.Insert(fresh...); err != nil {
			b.Fatal(err)
		}
		if n := trie.Delete(w.ds[0].ID, w.ds[1].ID); n != 2 {
			b.Fatalf("delete removed %d", n)
		}
	}
	b.Run("delta", func(b *testing.B) {
		trie := benchTrie(b, w, "T-drive", dist.Hausdorff)
		mutate(b, trie)
		if trie.DeltaLen() != pending+2 {
			b.Fatalf("delta = %d", trie.DeltaLen())
		}
		run(b, trie)
	})
	b.Run("compacted", func(b *testing.B) {
		trie := benchTrie(b, w, "T-drive", dist.Hausdorff)
		mutate(b, trie)
		if err := trie.Compact(); err != nil {
			b.Fatal(err)
		}
		run(b, trie)
	})
}

// BenchmarkSearchRadius times the range-query path on the engine and
// on the single-partition trie.
func BenchmarkSearchRadius(b *testing.B) {
	w := getWorld(b, "T-drive")
	radius := w.spec.Region().Max.Dist(w.spec.Region().Min) / 8
	b.Run("engine", func(b *testing.B) {
		idx, err := repose.Build(w.ds, repose.Options{Partitions: 8, Delta: defaultDelta("T-drive")})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := w.queries[i%len(w.queries)]
			if _, err := idx.SearchRadius(ctx, q, radius); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trie", func(b *testing.B) {
		trie := benchTrie(b, w, "T-drive", dist.Hausdorff)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := w.queries[i%len(w.queries)]
			_ = trie.SearchRadius(q.Points, radius)
		}
	})
}

// BenchmarkSearchBatch times the batched query path over the shared
// worker pool.
func BenchmarkSearchBatch(b *testing.B) {
	w := getWorld(b, "T-drive")
	idx, err := repose.Build(w.ds, repose.Options{Partitions: 8, Delta: defaultDelta("T-drive")})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.SearchBatch(ctx, w.queries, benchK); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchMeasures times the single-partition top-k hot path
// under each of the six measures, with allocation counts: any
// per-measure scratch regression (a kernel or bound that starts
// allocating) shows up here.
func BenchmarkSearchMeasures(b *testing.B) {
	w := getWorld(b, "T-drive")
	for _, m := range dist.Measures() {
		b.Run(m.String(), func(b *testing.B) {
			trie := benchTrie(b, w, "T-drive", m)
			var out []repose.Result
			for _, q := range w.queries {
				out = trie.SearchAppend(out[:0], q.Points, benchK)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := w.queries[i%len(w.queries)]
				out = trie.SearchAppend(out[:0], q.Points, benchK)
			}
		})
	}
}

// BenchmarkRefineWorkers measures intra-partition parallel leaf
// refinement against the sequential default on a single-partition
// index (where the partition-level parallelism the engine usually
// relies on is absent).
func BenchmarkRefineWorkers(b *testing.B) {
	w := getWorld(b, "T-drive")
	idx, err := repose.Build(w.ds, repose.Options{Partitions: 1, Delta: defaultDelta("T-drive")})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := w.queries[i%len(w.queries)]
				if _, err := idx.Search(ctx, q, benchK, repose.WithRefineWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4 measures QT per dataset × measure × algorithm (the
// performance-overview table). IS is attached as a custom metric.
func BenchmarkTable4(b *testing.B) {
	for _, name := range []string{"T-drive", "Xian"} {
		w := getWorld(b, name)
		for _, m := range []dist.Measure{dist.Hausdorff, dist.Frechet, dist.DTW} {
			algos := []cluster.Algorithm{cluster.REPOSE, cluster.DITA, cluster.DFT, cluster.LS}
			for _, algo := range algos {
				if (algo == cluster.DITA && m == dist.Hausdorff) ||
					(algo == cluster.DFT && !(m == dist.Hausdorff || m == dist.Frechet || m == dist.DTW)) {
					continue
				}
				strategy := partition.Heterogeneous
				if algo != cluster.REPOSE {
					strategy = partition.Homogeneous
				}
				b.Run(fmt.Sprintf("%s/%v/%v", name, m, algo), func(b *testing.B) {
					eng := w.engine(b, name, engineOpts{
						algo: algo, measure: m, strategy: strategy, optimize: true,
					})
					benchQueries(b, eng, w.queries, benchK)
				})
			}
		}
	}
}

// BenchmarkTable4Build measures IT: index construction time per
// algorithm (T-drive, Hausdorff where supported).
func BenchmarkTable4Build(b *testing.B) {
	w := getWorld(b, "T-drive")
	region := w.spec.Region()
	g, err := grid.New(region, defaultDelta("T-drive"))
	if err != nil {
		b.Fatal(err)
	}
	params := dist.Params{Epsilon: dist.DefaultParams(region).Epsilon, Gap: region.Min}
	for _, algo := range []cluster.Algorithm{cluster.REPOSE, cluster.DFT} {
		b.Run(algo.String(), func(b *testing.B) {
			assign, err := partition.Assign(partition.Heterogeneous, w.ds, g, 8, 7)
			if err != nil {
				b.Fatal(err)
			}
			parts := partition.Split(w.ds, assign, 8)
			spec := cluster.IndexSpec{
				Algorithm: algo, Measure: dist.Hausdorff, Params: params,
				Region: region, Delta: defaultDelta("T-drive"), Optimize: true,
				DFTC: 5, Seed: 17,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.BuildLocal(spec, parts, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6 sweeps k (query-time-vs-k curves).
func BenchmarkFig6(b *testing.B) {
	w := getWorld(b, "T-drive")
	for _, m := range []dist.Measure{dist.Hausdorff, dist.Frechet} {
		eng := w.engine(b, "T-drive", engineOpts{
			algo: cluster.REPOSE, measure: m, strategy: partition.Heterogeneous, optimize: true,
		})
		for _, k := range []int{1, 10, 50, 100} {
			if k > len(w.ds) {
				break
			}
			b.Run(fmt.Sprintf("%v/k=%d", m, k), func(b *testing.B) {
				benchQueries(b, eng, w.queries, k)
			})
		}
	}
}

// BenchmarkTable5 sweeps the grid cell side δ.
func BenchmarkTable5(b *testing.B) {
	w := getWorld(b, "T-drive")
	for _, delta := range []float64{0.01, 0.05, 0.15, 0.30} {
		b.Run(fmt.Sprintf("delta=%g", delta), func(b *testing.B) {
			eng := w.engine(b, "T-drive", engineOpts{
				algo: cluster.REPOSE, measure: dist.Hausdorff,
				strategy: partition.Heterogeneous, delta: delta, optimize: true,
			})
			benchQueries(b, eng, w.queries, benchK)
		})
	}
}

// BenchmarkTable6 sweeps the pivot count Np.
func BenchmarkTable6(b *testing.B) {
	w := getWorld(b, "T-drive")
	for _, np := range []int{1, 3, 5, 7, 11} {
		b.Run(fmt.Sprintf("Np=%d", np), func(b *testing.B) {
			eng := w.engine(b, "T-drive", engineOpts{
				algo: cluster.REPOSE, measure: dist.Hausdorff,
				strategy: partition.Heterogeneous, np: np, optimize: true,
			})
			benchQueries(b, eng, w.queries, benchK)
		})
	}
}

// BenchmarkFig7 compares the optimized (re-arranged) and basic tries.
func BenchmarkFig7(b *testing.B) {
	w := getWorld(b, "T-drive")
	for _, optimized := range []bool{true, false} {
		label := "optimized"
		if !optimized {
			label = "unoptimized"
		}
		b.Run(label, func(b *testing.B) {
			eng := w.engine(b, "T-drive", engineOpts{
				algo: cluster.REPOSE, measure: dist.Hausdorff,
				strategy: partition.Heterogeneous, optimize: optimized,
			})
			benchQueries(b, eng, w.queries, benchK)
		})
	}
}

// BenchmarkFig8 sweeps dataset cardinality.
func BenchmarkFig8(b *testing.B) {
	w := getWorld(b, "Xian")
	for _, scale := range []float64{0.2, 0.6, 1.0} {
		n := int(float64(len(w.ds)) * scale)
		if n < 1 {
			n = 1
		}
		sub := &world{
			ds: w.ds[:n], spec: w.spec, queries: w.queries,
			engines: map[string]*cluster.Local{},
		}
		b.Run(fmt.Sprintf("scale=%.1f", scale), func(b *testing.B) {
			eng := sub.engine(b, "Xian", engineOpts{
				algo: cluster.REPOSE, measure: dist.Hausdorff,
				strategy: partition.Heterogeneous, optimize: true,
			})
			benchQueries(b, eng, sub.queries, benchK)
		})
	}
}

// BenchmarkFig9 sweeps the number of partitions.
func BenchmarkFig9(b *testing.B) {
	w := getWorld(b, "Xian")
	for _, nparts := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("partitions=%d", nparts), func(b *testing.B) {
			eng := w.engine(b, "Xian", engineOpts{
				algo: cluster.REPOSE, measure: dist.Hausdorff,
				strategy: partition.Heterogeneous, partitions: nparts, optimize: true,
			})
			benchQueries(b, eng, w.queries, benchK)
		})
	}
}

// BenchmarkTable7 compares the global partitioning strategies.
func BenchmarkTable7(b *testing.B) {
	w := getWorld(b, "Xian")
	for _, s := range []partition.Strategy{partition.Heterogeneous, partition.Homogeneous, partition.Random} {
		b.Run(s.String(), func(b *testing.B) {
			eng := w.engine(b, "Xian", engineOpts{
				algo: cluster.REPOSE, measure: dist.Hausdorff, strategy: s, optimize: true,
			})
			benchQueries(b, eng, w.queries, benchK)
		})
	}
}

// BenchmarkTable8 compares REPOSE, Heter-DITA, and DITA on Frechet.
func BenchmarkTable8(b *testing.B) {
	w := getWorld(b, "T-drive")
	rows := []struct {
		label    string
		algo     cluster.Algorithm
		strategy partition.Strategy
	}{
		{"REPOSE", cluster.REPOSE, partition.Heterogeneous},
		{"Heter-DITA", cluster.DITA, partition.Heterogeneous},
		{"DITA", cluster.DITA, partition.Homogeneous},
	}
	for _, r := range rows {
		b.Run(r.label, func(b *testing.B) {
			eng := w.engine(b, "T-drive", engineOpts{
				algo: r.algo, measure: dist.Frechet, strategy: r.strategy, optimize: true,
			})
			benchQueries(b, eng, w.queries, benchK)
		})
	}
}

// BenchmarkTable9 compares REPOSE, Heter-DFT, and DFT on Hausdorff.
func BenchmarkTable9(b *testing.B) {
	w := getWorld(b, "T-drive")
	rows := []struct {
		label    string
		algo     cluster.Algorithm
		strategy partition.Strategy
	}{
		{"REPOSE", cluster.REPOSE, partition.Heterogeneous},
		{"Heter-DFT", cluster.DFT, partition.Heterogeneous},
		{"DFT", cluster.DFT, partition.Homogeneous},
	}
	for _, r := range rows {
		b.Run(r.label, func(b *testing.B) {
			eng := w.engine(b, "T-drive", engineOpts{
				algo: r.algo, measure: dist.Hausdorff, strategy: r.strategy, optimize: true,
			})
			benchQueries(b, eng, w.queries, benchK)
		})
	}
}

// BenchmarkAblationBounds toggles the two-side and pivot bounds off —
// the design-choice ablation DESIGN.md calls out.
func BenchmarkAblationBounds(b *testing.B) {
	w := getWorld(b, "Xian")
	variants := []struct {
		label      string
		disableLBt bool
		disableLBp bool
	}{
		{"all-bounds", false, false},
		{"no-LBt", true, false},
		{"no-LBp", false, true},
		{"LBo-only", true, true},
	}
	for _, v := range variants {
		b.Run(v.label, func(b *testing.B) {
			eng := w.engine(b, "Xian", engineOpts{
				algo: cluster.REPOSE, measure: dist.Hausdorff,
				strategy: partition.Heterogeneous, optimize: true,
				disableLBt: v.disableLBt, disableLBp: v.disableLBp,
			})
			benchQueries(b, eng, w.queries, benchK)
		})
	}
}

// BenchmarkAblationLayout compares the pointer, succinct, and
// compressed (tSTAT) trie layouts on the same queries; index_MB shows
// each layout's footprint next to its latency.
func BenchmarkAblationLayout(b *testing.B) {
	w := getWorld(b, "T-drive")
	for _, layout := range []rptrie.Layout{rptrie.LayoutPointer, rptrie.LayoutSuccinct, rptrie.LayoutCompressed} {
		b.Run(layout.String(), func(b *testing.B) {
			eng := w.engine(b, "T-drive", engineOpts{
				algo: cluster.REPOSE, measure: dist.Hausdorff,
				strategy: partition.Heterogeneous, optimize: true, layout: layout,
			})
			benchQueries(b, eng, w.queries, benchK)
		})
	}
}

// BenchmarkAblationIncrementalLB isolates the Section IV-C
// optimization: maintaining bounds incrementally (O(m) per node)
// versus recomputing them from the whole prefix (O(mn)).
func BenchmarkAblationIncrementalLB(b *testing.B) {
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 6)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	q := make([]geo.Point, 50)
	for i := range q {
		q[i] = geo.Point{X: rng.Float64() * 8, Y: rng.Float64() * 8}
	}
	path := make([]grid.Cell, 64)
	for i := range path {
		path[i] = g.CellOf(geo.Point{X: rng.Float64() * 8, Y: rng.Float64() * 8})
	}
	meta := dist.NodeMeta{MinLen: 10, MaxLen: 100}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bd := dist.NewBounder(dist.Hausdorff, q, g.HalfDiagonal(), dist.Params{})
			for _, c := range path {
				bd.Extend(c)
				_ = bd.LBo(meta)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for depth := 1; depth <= len(path); depth++ {
				bd := dist.NewBounder(dist.Hausdorff, q, g.HalfDiagonal(), dist.Params{})
				for _, c := range path[:depth] {
					bd.Extend(c)
				}
				_ = bd.LBo(meta)
			}
		}
	})
}

// BenchmarkDistances times the six exact distance kernels.
func BenchmarkDistances(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) []geo.Point {
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 8, Y: rng.Float64() * 8}
		}
		return pts
	}
	a, c := mk(100), mk(100)
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	for _, m := range dist.Measures() {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dist.Distance(m, a, c, p)
			}
		})
	}
}

// BenchmarkTrieBuild times single-partition RP-Trie construction.
func BenchmarkTrieBuild(b *testing.B) {
	w := getWorld(b, "T-drive")
	region := w.spec.Region()
	g, err := grid.New(region, defaultDelta("T-drive"))
	if err != nil {
		b.Fatal(err)
	}
	for _, optimized := range []bool{false, true} {
		label := "basic"
		if optimized {
			label = "rearranged"
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rptrie.Build(rptrie.Config{
					Measure: dist.Hausdorff, Grid: g, Optimize: optimized,
				}, w.ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
