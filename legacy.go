package repose

import "context"

// Pre-context API shims, kept for one release so existing callers
// keep compiling. They delegate to the unified context-aware surface
// with context.Background().

// SearchPoints is Search on a raw point sequence.
//
// Deprecated: wrap the points in a Trajectory and call Search with a
// context: idx.Search(ctx, &Trajectory{Points: q}, k).
func (x *Index) SearchPoints(q []Point, k int) ([]Result, error) {
	return x.Search(context.Background(), &Trajectory{Points: q}, k)
}

// ClusterIndex is a thin wrapper over an Index backed by the remote
// engine, preserving the pre-unification method set.
//
// Deprecated: use BuildRemote, which returns an *Index answering the
// full query surface (SearchRadius, SearchBatch, options, contexts).
type ClusterIndex struct {
	idx *Index
}

// BuildCluster ships the partitions to the given worker addresses and
// builds remotely.
//
// Deprecated: use BuildRemote.
func BuildCluster(ds []*Trajectory, opts Options, workers []string) (*ClusterIndex, error) {
	idx, err := BuildRemote(ds, opts, workers)
	if err != nil {
		return nil, err
	}
	return &ClusterIndex{idx: idx}, nil
}

// Search returns the k most similar trajectories, merging worker-
// local results.
//
// Deprecated: use Index.Search with a context.
func (c *ClusterIndex) Search(q *Trajectory, k int) ([]Result, error) {
	return c.idx.Search(context.Background(), q, k)
}

// Stats reports cluster index statistics.
//
// Deprecated: use Index.Stats.
func (c *ClusterIndex) Stats() Stats { return c.idx.Stats() }

// Close releases the connections to the workers (the workers keep
// running).
//
// Deprecated: use Index.Close.
func (c *ClusterIndex) Close() { c.idx.Close() }
