// Quickstart: build a REPOSE index over synthetic trajectories and
// run a top-k similarity query.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repose"
)

func main() {
	// Make a small fleet of noisy trajectories along a few routes.
	rng := rand.New(rand.NewSource(42))
	var fleet []*repose.Trajectory
	for id := 0; id < 500; id++ {
		route := float64(id % 5)
		tr := &repose.Trajectory{ID: id}
		for s := 0; s < 20; s++ {
			tr.Points = append(tr.Points, repose.Point{
				X: float64(s)*0.5 + rng.NormFloat64()*0.1,
				Y: route*2 + rng.NormFloat64()*0.1,
			})
		}
		fleet = append(fleet, tr)
	}

	// Build a distributed index with default settings (Hausdorff
	// distance, heterogeneous partitioning, one partition per core).
	idx, err := repose.Build(fleet, repose.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("indexed %d trajectories in %d partitions (%.1f KB) in %v\n",
		st.Trajectories, st.Partitions, float64(st.IndexBytes)/1024, st.BuildTime.Round(1000))

	// A fresh trajectory along route 2: which existing ones match?
	query := &repose.Trajectory{ID: -1}
	for s := 0; s < 20; s++ {
		query.Points = append(query.Points, repose.Point{X: float64(s) * 0.5, Y: 4.0})
	}
	results, err := idx.Search(context.Background(), query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 most similar trajectories:")
	for rank, r := range results {
		fmt.Printf("  %d. trajectory %d (route %d), Hausdorff distance %.4f\n",
			rank+1, r.ID, r.ID%5, r.Dist)
	}
}
