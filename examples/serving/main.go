// Serving: run the HTTP query gateway in-process and walk its whole
// surface — a cold query, a generation-keyed cache hit, a burst of
// identical queries coalesced into one execution, a mutation that
// invalidates exactly (the cache key includes the index's generation
// vector, so a stale answer is unreachable by construction), the
// /healthz and /metrics endpoints, and a graceful drain.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repose"
	"repose/internal/serve"
)

func trip(rng *rand.Rand, id int) *repose.Trajectory {
	tr := &repose.Trajectory{ID: id}
	x, y := rng.Float64()*8, rng.Float64()*8
	for s := 0; s < 15; s++ {
		x += rng.NormFloat64() * 0.2
		y += rng.NormFloat64() * 0.2
		tr.Points = append(tr.Points, repose.Point{X: x, Y: y})
	}
	return tr
}

type answer struct {
	Results []struct {
		ID       int     `json:"id"`
		Distance float64 `json:"distance"`
	} `json:"results"`
	Generations []uint64 `json:"generations"`
	Cached      bool     `json:"cached"`
	Coalesced   bool     `json:"coalesced"`
}

func search(url string, q *repose.Trajectory, k int) answer {
	pts := make([][2]float64, len(q.Points))
	for i, p := range q.Points {
		pts[i] = [2]float64{p.X, p.Y}
	}
	body, _ := json.Marshal(map[string]any{"points": pts, "k": k})
	resp, err := http.Post(url+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var a answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		log.Fatal(err)
	}
	return a
}

func main() {
	rng := rand.New(rand.NewSource(3))
	var fleet []*repose.Trajectory
	for id := 0; id < 500; id++ {
		fleet = append(fleet, trip(rng, id))
	}
	idx, err := repose.Build(fleet, repose.Options{Partitions: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	gw := serve.New(idx, serve.Config{})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	fmt.Printf("gateway up at %s over %d trajectories\n\n", ts.URL, len(fleet))

	// A cold query executes in the engine; an identical repeat is a
	// cache hit at the same generation vector.
	q := fleet[42]
	first := search(ts.URL, q, 3)
	fmt.Printf("cold query:   cached=%-5v generations=%v top hit id=%d\n",
		first.Cached, first.Generations, first.Results[0].ID)
	repeat := search(ts.URL, q, 3)
	fmt.Printf("repeat:       cached=%-5v (same answer, zero engine work)\n\n", repeat.Cached)

	// A mutation advances the touched partition's generation — the
	// cached entry's key vector can never be read again, so the next
	// query recomputes. Exact invalidation, no TTLs.
	if err := idx.Insert(context.Background(), []*repose.Trajectory{trip(rng, 10_000)}); err != nil {
		log.Fatal(err)
	}
	after := search(ts.URL, q, 3)
	fmt.Printf("after insert: cached=%-5v generations=%v (entry invalidated exactly)\n\n",
		after.Cached, after.Generations)

	// A burst of identical queries while none is cached: one leader
	// executes, the rest coalesce onto its answer.
	burstQ := fleet[77]
	var wg sync.WaitGroup
	var mu sync.Mutex
	coalesced := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if search(ts.URL, burstQ, 5).Coalesced {
				mu.Lock()
				coalesced++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("burst of 8 identical queries: %d coalesced onto the leader's execution\n\n", coalesced)

	// Operational surface.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	fmt.Printf("healthz: %d %s\n", resp.StatusCode, health.Status)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var metrics struct {
		Requests float64 `json:"requests_search"`
		Cache    struct {
			Hits          float64 `json:"hits"`
			Invalidations float64 `json:"invalidations"`
			HitRatio      float64 `json:"hit_ratio"`
		} `json:"cache"`
		Coalesce struct {
			Coalesced float64 `json:"coalesced_requests"`
		} `json:"coalesce"`
	}
	json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	fmt.Printf("metrics: %.0f search requests, %.0f cache hits (ratio %.2f), %.0f invalidations, %.0f coalesced\n\n",
		metrics.Requests, metrics.Cache.Hits, metrics.Cache.HitRatio,
		metrics.Cache.Invalidations, metrics.Coalesce.Coalesced)

	// Graceful drain: in-flight work finishes, new work is refused.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/search", "application/json",
		bytes.NewReader([]byte(`{"points":[[1,1]],"k":1}`)))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("after drain: POST /search -> %d (server refuses new work)\n", resp.StatusCode)
}
