// Distributed: run a multi-worker REPOSE cluster over TCP on one
// machine — the paper's Spark deployment in miniature. Worker
// services own partitions; the driver ships them trajectories at
// build time and broadcasts queries; local top-k results are merged
// at the driver (Section V-C).
//
// This example starts the workers in-process for self-containment;
// in a real deployment each would be a `repose-worker` process on its
// own machine.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"repose"
	"repose/internal/dataset"
)

func main() {
	const numWorkers = 4
	ready := make(chan string, numWorkers)
	for i := 0; i < numWorkers; i++ {
		go func() {
			// ":0" picks an ephemeral port, reported via the callback.
			if err := repose.ServeWorker("127.0.0.1:0", func(addr string) { ready <- addr }); err != nil {
				log.Fatal(err)
			}
		}()
	}
	addrs := make([]string, numWorkers)
	for i := range addrs {
		addrs[i] = <-ready
	}
	fmt.Printf("started %d workers: %v\n", numWorkers, addrs)

	spec, err := dataset.ByName("T-drive", 1.0/256)
	if err != nil {
		log.Fatal(err)
	}
	ds := dataset.Generate(spec)

	start := time.Now()
	cluster, err := repose.BuildCluster(ds, repose.Options{Partitions: 16}, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	st := cluster.Stats()
	fmt.Printf("distributed build: %d trajectories over %d partitions on %d workers in %v\n",
		st.Trajectories, st.Partitions, numWorkers, time.Since(start).Round(time.Millisecond))

	query := ds[41]
	start = time.Now()
	res, err := cluster.Search(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed top-5 for trajectory %d in %v:\n", query.ID, time.Since(start).Round(time.Microsecond))
	for rank, r := range res {
		fmt.Printf("  %d. trajectory %d, distance %.5f\n", rank+1, r.ID, r.Dist)
	}
}
