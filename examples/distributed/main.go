// Distributed: run a multi-worker REPOSE cluster over TCP on one
// machine — the paper's Spark deployment in miniature, plus the fault
// tolerance the paper gets from Spark for free. Worker services own
// partitions; the driver ships them trajectories at build time and
// broadcasts queries; local top-k results are merged at the driver
// (Section V-C).
//
// With repose.WithReplication(2) every partition lives on two
// workers. This example kills one worker mid-workload (its network is
// severed through a chaos proxy, exactly like the failover test
// suite) and shows queries continuing uninterrupted on the replicas,
// then brings a fresh, empty worker back at the same address — the
// `repose-worker -rejoin` flow — and watches the driver stream the
// partition state back into it.
//
// This example starts the workers in-process for self-containment; in
// a real deployment each would be a `repose-worker` process on its
// own machine.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repose"
	"repose/internal/cluster/chaos"
	"repose/internal/dataset"
)

func main() {
	// Workers shut down when this context ends.
	ctx, stop := context.WithCancel(context.Background())
	defer stop()

	const numWorkers = 4
	ready := make(chan string, numWorkers)
	for i := 0; i < numWorkers; i++ {
		go func() {
			// ":0" picks an ephemeral port, reported via the callback.
			if err := repose.ServeWorkerContext(ctx, "127.0.0.1:0", func(addr string) { ready <- addr }); err != nil && ctx.Err() == nil {
				log.Fatal(err)
			}
		}()
	}
	addrs := make([]string, numWorkers)
	for i := range addrs {
		addrs[i] = <-ready
	}
	// The chaos fleet sits between driver and workers so this example
	// can sever a worker's network on demand.
	fleet, err := chaos.NewFleet(addrs, chaos.Schedule{})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	fmt.Printf("started %d workers: %v\n", numWorkers, addrs)

	spec, err := dataset.ByName("T-drive", 1.0/256)
	if err != nil {
		log.Fatal(err)
	}
	ds := dataset.Generate(spec)

	start := time.Now()
	idx, err := repose.BuildRemote(ds, repose.Options{Partitions: 16}, fleet.Addrs(),
		repose.WithReplication(2),
		repose.WithFailover(repose.FailoverConfig{
			FailThreshold: 1,
			ProbeInterval: 50 * time.Millisecond,
			CallTimeout:   2 * time.Second,
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	st := idx.Stats()
	fmt.Printf("replicated build: %d trajectories × 2 replicas over %d partitions on %d workers in %v\n",
		st.Trajectories, st.Partitions, numWorkers, time.Since(start).Round(time.Millisecond))

	// A top-k query with a deadline: if a straggler partition held the
	// query past the deadline, the driver would cancel it on the
	// workers and return context.DeadlineExceeded.
	query := ds[41]
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var report repose.QueryReport
	res, err := idx.Search(qctx, query, 5, repose.WithReport(&report))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed top-5 for trajectory %d in %v (straggler ratio %.2f):\n",
		query.ID, report.Wall.Round(time.Microsecond), report.Imbalance())
	for rank, r := range res {
		fmt.Printf("  %d. trajectory %d, distance %.5f\n", rank+1, r.ID, r.Dist)
	}

	// Kill worker 1 mid-workload: its connections are severed and
	// reconnects refused, exactly like a crashed process. The workload
	// keeps running; failover is invisible apart from the health view.
	fmt.Println("\n--- killing worker 1 mid-workload ---")
	proxy, err := fleet.At(1)
	if err != nil {
		log.Fatal(err)
	}
	killed := false
	for i := 0; i < 20; i++ {
		if i == 7 {
			proxy.Down()
			killed = true
		}
		got, err := idx.Search(ctx, ds[i*13], 5)
		if err != nil {
			log.Fatalf("query %d failed (killed=%v): %v", i, killed, err)
		}
		if i == 7 || i == 19 {
			fmt.Printf("query %d with worker 1 dead: top hit trajectory %d at %.5f\n", i, got[0].ID, got[0].Dist)
		}
	}
	for _, h := range idx.Health() {
		state := "up"
		if h.Down {
			state = "DOWN"
		}
		fmt.Printf("worker %s: %s, %d replicas awaiting restore\n", h.Addr, state, h.StaleParts)
	}

	// Online mutations keep working too — the surviving replicas
	// absorb them, and the dead worker will be backfilled on rejoin.
	fresh := &repose.Trajectory{ID: 10_000_000, Points: query.Points}
	if err := idx.Upsert(ctx, []*repose.Trajectory{fresh}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("upserted trajectory 10000000 while worker 1 was dead")

	// Bring a replacement online: a brand-new empty worker appears at
	// the same (proxied) address — `repose-worker -rejoin` in a real
	// deployment — and the driver streams the partition state back.
	fmt.Println("\n--- restarting worker 1 empty, -rejoin style ---")
	rejoinReady := make(chan string, 1)
	go func() {
		if err := repose.ServeWorkerOptions(ctx, "127.0.0.1:0", repose.WorkerOptions{Rejoin: true},
			func(addr string) { rejoinReady <- addr }); err != nil && ctx.Err() == nil {
			log.Fatal(err)
		}
	}()
	proxy.SetTarget(<-rejoinReady)
	proxy.Up()
	for deadline := time.Now().Add(30 * time.Second); ; {
		healthy := true
		for _, h := range idx.Health() {
			if h.Down || h.StaleParts > 0 {
				healthy = false
			}
		}
		if healthy {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("cluster did not heal in time")
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("cluster healed: restored worker holds its partitions again (mutations included)")

	// The range query and the batch path ride the same failover
	// machinery — same methods, same results as an in-process index.
	within, err := idx.SearchRadius(ctx, query, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d trajectories within radius 0.5 of trajectory %d\n", len(within), query.ID)

	var batchRep repose.BatchReport
	batch, err := idx.SearchBatch(ctx, ds[:8], 3, repose.WithBatchReport(&batchRep))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d queries answered in %v\n", len(batch), batchRep.Makespan.Round(time.Microsecond))
}
