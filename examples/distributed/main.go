// Distributed: run a multi-worker REPOSE cluster over TCP on one
// machine — the paper's Spark deployment in miniature. Worker
// services own partitions; the driver ships them trajectories at
// build time and broadcasts queries; local top-k results are merged
// at the driver (Section V-C).
//
// The returned index answers the exact same context-aware query
// surface as an in-process one: Search, SearchRadius, and SearchBatch
// all work identically, deadlines cancel straggler partitions
// mid-scan on the workers, and WithReport observes per-partition
// balance.
//
// This example starts the workers in-process for self-containment;
// in a real deployment each would be a `repose-worker` process on its
// own machine.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repose"
	"repose/internal/dataset"
)

func main() {
	// Workers shut down when this context ends.
	ctx, stop := context.WithCancel(context.Background())
	defer stop()

	const numWorkers = 4
	ready := make(chan string, numWorkers)
	for i := 0; i < numWorkers; i++ {
		go func() {
			// ":0" picks an ephemeral port, reported via the callback.
			if err := repose.ServeWorkerContext(ctx, "127.0.0.1:0", func(addr string) { ready <- addr }); err != nil && ctx.Err() == nil {
				log.Fatal(err)
			}
		}()
	}
	addrs := make([]string, numWorkers)
	for i := range addrs {
		addrs[i] = <-ready
	}
	fmt.Printf("started %d workers: %v\n", numWorkers, addrs)

	spec, err := dataset.ByName("T-drive", 1.0/256)
	if err != nil {
		log.Fatal(err)
	}
	ds := dataset.Generate(spec)

	start := time.Now()
	idx, err := repose.BuildRemote(ds, repose.Options{Partitions: 16}, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	st := idx.Stats()
	fmt.Printf("distributed build: %d trajectories over %d partitions on %d workers in %v\n",
		st.Trajectories, st.Partitions, numWorkers, time.Since(start).Round(time.Millisecond))

	// A top-k query with a deadline: if a straggler partition held the
	// query past the deadline, the driver would cancel it on the
	// workers and return context.DeadlineExceeded.
	query := ds[41]
	qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var report repose.QueryReport
	res, err := idx.Search(qctx, query, 5, repose.WithReport(&report))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed top-5 for trajectory %d in %v (straggler ratio %.2f):\n",
		query.ID, report.Wall.Round(time.Microsecond), report.Imbalance())
	for rank, r := range res {
		fmt.Printf("  %d. trajectory %d, distance %.5f\n", rank+1, r.ID, r.Dist)
	}

	// The range query and the batch path work on the remote backend
	// too — same methods, same results as an in-process index.
	within, err := idx.SearchRadius(ctx, query, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d trajectories within radius 0.5 of trajectory %d\n", len(within), query.ID)

	var batchRep repose.BatchReport
	batch, err := idx.SearchBatch(ctx, ds[:8], 3, repose.WithBatchReport(&batchRep))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d queries answered in %v\n", len(batch), batchRep.Makespan.Round(time.Microsecond))
}
