// Ridesharing: the paper's motivating scenario. A ride-hailing
// operator keeps a history of completed trips; when a new trip
// request arrives, it retrieves the k historical trips most similar
// to the requested route — for pricing, ETA estimation, or matching
// drivers who know the route.
//
// The history is timestamped, so the second half of the demo answers
// the dispatcher's question — "who drove past here between 8 and
// 9am?" — with a time-windowed subtrajectory search: candidates are
// scored by their best-matching contiguous segment inside the window,
// and each hit reports which samples matched.
//
//	go run ./examples/ridesharing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repose"
	"repose/internal/dataset"
)

func main() {
	// A synthetic city modeled on Xi'an's statistics: dense core,
	// hot-spot commute corridors.
	spec, err := dataset.ByName("Xian", 1.0/2048)
	if err != nil {
		log.Fatal(err)
	}
	history := dataset.Generate(spec)
	fmt.Printf("trip history: %d rides, avg %d GPS points, %.2f°x%.2f° area\n",
		len(history), spec.AvgLen, spec.SpanX, spec.SpanY)

	// Timestamp the history: rides depart staggered across one day,
	// sampling a GPS point every 15 seconds. (Times is optional —
	// untimestamped trajectories simply never match windowed queries.)
	day := time.Date(2021, time.April, 19, 0, 0, 0, 0, time.UTC)
	for i, trip := range history {
		depart := day.Unix() + int64(i*97%86400)
		times := make([]int64, len(trip.Points))
		for j := range times {
			times[j] = depart + int64(j)*15
		}
		trip.Times = times
	}

	// Frechet respects travel direction — a ride A→B should not
	// match its reverse B→A.
	idx, err := repose.Build(history, repose.Options{
		Measure:    repose.Frechet,
		Partitions: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("index: %d partitions, %.1f KB, built in %v\n\n",
		st.Partitions, float64(st.IndexBytes)/1024, st.BuildTime.Round(1000))

	// A new trip request: reuse a historical route shape, jittered,
	// as the requested route.
	request := history[137].Clone()
	request.ID = -1
	for i := range request.Points {
		request.Points[i].X += 0.0004
		request.Points[i].Y -= 0.0003
	}

	// An online matcher answers under a latency budget: the deadline
	// cancels straggler partitions instead of blocking the request.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	const k = 5
	matches, err := idx.Search(ctx, request, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rides most similar to the requested route (%d points):\n", len(request.Points))
	for rank, m := range matches {
		fmt.Printf("  %d. ride #%d — Frechet distance %.5f°\n", rank+1, m.ID, m.Dist)
	}

	// Sanity: the jittered source ride should top the list.
	if len(matches) > 0 && matches[0].ID == 137 {
		fmt.Println("\nthe requested route was correctly matched to its source ride")
	}

	// Dispatcher's question: who drove past here between 8 and 9am?
	// A short corridor (a slice of a real route) is the "here"; the
	// time window restricts matching to samples inside [8am, 9am];
	// subtrajectory scoring finds the best-matching contiguous
	// segment, so a long cross-town ride matches on just the part
	// that traversed the corridor.
	corridor := history[512].Clone()
	corridor.ID = -2
	corridor.Points = corridor.Points[len(corridor.Points)/3 : len(corridor.Points)/3+6]
	corridor.Times = nil // the query itself needs no clock

	from := day.Add(8 * time.Hour)
	to := day.Add(9 * time.Hour)
	passed, err := idx.SearchSub(ctx, corridor, k,
		repose.WithTimeWindow(from.Unix(), to.Unix()),
		repose.WithSegmentLength(3, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrides that passed the corridor between %s and %s:\n",
		from.Format("15:04"), to.Format("15:04"))
	for rank, m := range passed {
		ride := history[m.ID]
		fmt.Printf("  %d. ride #%d — samples [%d, %d) at %s–%s, distance %.5f°\n",
			rank+1, m.ID, m.Start, m.End,
			time.Unix(ride.Times[m.Start], 0).UTC().Format("15:04:05"),
			time.Unix(ride.Times[m.End-1], 0).UTC().Format("15:04:05"),
			m.Dist)
	}
}
