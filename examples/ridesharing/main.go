// Ridesharing: the paper's motivating scenario. A ride-hailing
// operator keeps a history of completed trips; when a new trip
// request arrives, it retrieves the k historical trips most similar
// to the requested route — for pricing, ETA estimation, or matching
// drivers who know the route.
//
//	go run ./examples/ridesharing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repose"
	"repose/internal/dataset"
)

func main() {
	// A synthetic city modeled on Xi'an's statistics: dense core,
	// hot-spot commute corridors.
	spec, err := dataset.ByName("Xian", 1.0/2048)
	if err != nil {
		log.Fatal(err)
	}
	history := dataset.Generate(spec)
	fmt.Printf("trip history: %d rides, avg %d GPS points, %.2f°x%.2f° area\n",
		len(history), spec.AvgLen, spec.SpanX, spec.SpanY)

	// Frechet respects travel direction — a ride A→B should not
	// match its reverse B→A.
	idx, err := repose.Build(history, repose.Options{
		Measure:    repose.Frechet,
		Partitions: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("index: %d partitions, %.1f KB, built in %v\n\n",
		st.Partitions, float64(st.IndexBytes)/1024, st.BuildTime.Round(1000))

	// A new trip request: reuse a historical route shape, jittered,
	// as the requested route.
	request := history[137].Clone()
	request.ID = -1
	for i := range request.Points {
		request.Points[i].X += 0.0004
		request.Points[i].Y -= 0.0003
	}

	// An online matcher answers under a latency budget: the deadline
	// cancels straggler partitions instead of blocking the request.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	const k = 5
	matches, err := idx.Search(ctx, request, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rides most similar to the requested route (%d points):\n", len(request.Points))
	for rank, m := range matches {
		fmt.Printf("  %d. ride #%d — Frechet distance %.5f°\n", rank+1, m.ID, m.Dist)
	}

	// Sanity: the jittered source ride should top the list.
	if len(matches) > 0 && matches[0].ID == 137 {
		fmt.Println("\nthe requested route was correctly matched to its source ride")
	}
}
