// Streaming: drive a live REPOSE index the way a ride-sharing
// dispatcher would — trips finish and are inserted, old trips are
// retired, and matching queries run concurrently the whole time.
// Inserts land in per-partition delta overlays; WithAutoCompact folds
// them back into the tries once they grow past a fraction of the
// partition, and CompactNow forces a final fold. Queries are snapshot-
// isolated: they never observe a half-applied batch.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repose"
)

// routeTraj synthesizes one noisy trip along a numbered route.
func routeTraj(rng *rand.Rand, id, route int) *repose.Trajectory {
	tr := &repose.Trajectory{ID: id}
	for s := 0; s < 20; s++ {
		tr.Points = append(tr.Points, repose.Point{
			X: float64(s)*0.5 + rng.NormFloat64()*0.1,
			Y: float64(route)*2 + rng.NormFloat64()*0.1,
		})
	}
	return tr
}

func main() {
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()

	// Seed the index with an initial fleet of finished trips.
	var fleet []*repose.Trajectory
	for id := 0; id < 400; id++ {
		fleet = append(fleet, routeTraj(rng, id, id%5))
	}
	idx, err := repose.Build(fleet, repose.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded %d trips across %d partitions\n",
		idx.Stats().Trajectories, idx.Stats().Partitions)

	// Stream: batches of fresh trips arrive while the oldest retire,
	// with matching queries racing the whole time.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		qrng := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			probe := routeTraj(qrng, -1, qrng.Intn(5))
			if _, err := idx.Search(ctx, probe, 5); err != nil {
				log.Fatalf("concurrent query: %v", err)
			}
		}
	}()
	nextID, retired := 400, 0
	for batch := 0; batch < 40; batch++ {
		fresh := make([]*repose.Trajectory, 10)
		for i := range fresh {
			fresh[i] = routeTraj(rng, nextID, nextID%5)
			nextID++
		}
		// Threshold-triggered compaction keeps the unindexed overlay
		// below ~25% of each partition.
		if err := idx.Insert(ctx, fresh, repose.WithAutoCompact(repose.DefaultCompactFraction)); err != nil {
			log.Fatal(err)
		}
		old := []int{retired, retired + 1, retired + 2}
		n, err := idx.Delete(ctx, old)
		if err != nil {
			log.Fatal(err)
		}
		retired += n
	}
	wg.Wait()
	fmt.Printf("streamed %d inserts, retired %d trips; %d live\n",
		nextID-400, retired, idx.Stats().Trajectories)

	// An inserted trip is immediately searchable...
	lastBatchProbe := routeTraj(rand.New(rand.NewSource(1)), -1, (nextID-1)%5)
	res, err := idx.Search(ctx, lastBatchProbe, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 matches for a fresh probe:")
	for rank, r := range res {
		fmt.Printf("  %d. trip %d (route %d), distance %.4f\n", rank+1, r.ID, r.ID%5, r.Dist)
	}

	// ...and a retired trip is gone: a perfect-match probe for trip 0
	// no longer finds it.
	if _, err := idx.Delete(ctx, []int{401}); err != nil {
		log.Fatal(err)
	}
	if res, _ := idx.Search(ctx, routeTraj(rand.New(rand.NewSource(7)), -1, 0), 400); len(res) > 0 {
		for _, r := range res {
			if r.ID == 401 {
				log.Fatal("retired trip returned")
			}
		}
	}

	// Fold every pending delta back into the tries before steady-state
	// serving.
	if err := idx.CompactNow(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted; index holds %d trips in %.1f KB\n",
		idx.Stats().Trajectories, float64(idx.Stats().IndexBytes)/1024)
}
