// Multimeasure: run the same top-k query under all six similarity
// measures REPOSE supports and compare the rankings — the paper's
// argument for multi-measure support in one system (Section I).
//
//	go run ./examples/multimeasure
package main

import (
	"context"
	"fmt"
	"log"

	"repose"
	"repose/internal/dataset"
)

func main() {
	spec := dataset.Spec{
		Name: "demo", Cardinality: 800, AvgLen: 30,
		SpanX: 2, SpanY: 2, Hotspots: 6, Seed: 7,
	}
	ds := dataset.Generate(spec)
	query := ds[99]
	fmt.Printf("dataset: %d trajectories; query: trajectory %d (%d points)\n\n",
		len(ds), query.ID, len(query.Points))

	measures := []repose.Measure{
		repose.Hausdorff, repose.Frechet, repose.DTW,
		repose.LCSS, repose.EDR, repose.ERP,
	}
	const k = 4
	for _, m := range measures {
		idx, err := repose.Build(ds, repose.Options{Measure: m, Partitions: 4})
		if err != nil {
			log.Fatal(err)
		}
		res, err := idx.Search(context.Background(), query, k+1) // +1: skip the query itself
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s:", m)
		shown := 0
		for _, r := range res {
			if r.ID == query.ID {
				continue
			}
			fmt.Printf("  #%d (%.4f)", r.ID, r.Dist)
			shown++
			if shown == k {
				break
			}
		}
		fmt.Println()
	}

	fmt.Println("\nnote: order-sensitive measures (Frechet, DTW, ERP) and")
	fmt.Println("threshold-based ones (LCSS, EDR) rank neighbours differently —")
	fmt.Println("which is why applications need a system supporting all of them.")
}
