package repose

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestDurableBuildReopen is the public-API acceptance test for the
// disk-backed mode: an index built with WithDurableDir, mutated, and
// closed must come back from OpenDurable with bit-identical answers
// — no dataset in hand — and keep accepting durable mutations.
func TestDurableBuildReopen(t *testing.T) {
	ds := testData(t, 140)
	ctx := context.Background()
	for _, layout := range []Layout{LayoutPointer, LayoutSuccinct, LayoutCompressed} {
		hasRadius := layout != LayoutSuccinct
		t.Run(fmt.Sprintf("layout=%v", layout), func(t *testing.T) {
			dir := t.TempDir()
			idx, err := Build(ds, Options{Partitions: 3}, WithDurableDir(dir), WithLayout(layout))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			adds := make([]*Trajectory, 5)
			for i := range adds {
				adds[i] = freshTraj(rng, 700_000+i)
			}
			if err := idx.Insert(ctx, adds); err != nil {
				t.Fatal(err)
			}
			if n, err := idx.Delete(ctx, []int{ds[3].ID, ds[7].ID}); err != nil || n != 2 {
				t.Fatalf("delete: n=%d err=%v", n, err)
			}
			probe := adds[0]
			want, err := idx.Search(ctx, probe, 8)
			if err != nil {
				t.Fatal(err)
			}
			wantStats := idx.Stats()
			var wantRadius []Result
			if hasRadius {
				if wantRadius, err = idx.SearchRadius(ctx, probe, 0.5); err != nil {
					t.Fatal(err)
				}
			}
			if err := idx.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenDurable(dir)
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			defer re.Close()
			got, err := re.Search(ctx, probe, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered search differs:\n got %v\nwant %v", got, want)
			}
			if st := re.Stats(); st.Trajectories != wantStats.Trajectories {
				t.Fatalf("recovered Stats.Trajectories = %d, want %d", st.Trajectories, wantStats.Trajectories)
			}
			if hasRadius {
				gr, err := re.SearchRadius(ctx, probe, 0.5)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gr, wantRadius) {
					t.Fatalf("recovered radius search differs:\n got %v\nwant %v", gr, wantRadius)
				}
			}

			// The recovered index keeps journaling: insert, reopen
			// again, and the new trajectory must still be there.
			late := freshTraj(rng, 800_000)
			if err := re.Insert(ctx, []*Trajectory{late}); err != nil {
				t.Fatalf("insert on recovered index: %v", err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2, err := OpenDurable(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			res, err := re2.Search(ctx, late, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 1 || res[0].ID != late.ID || res[0].Dist != 0 {
				t.Fatalf("post-recovery insert lost across reopen: %v", res)
			}
		})
	}
}

// TestOpenDurableMissing: a directory with no manifest is not a
// durable index, and the error must say so rather than panic or
// return an empty index.
func TestOpenDurableMissing(t *testing.T) {
	if _, err := OpenDurable(t.TempDir()); err == nil {
		t.Fatal("OpenDurable on an empty directory succeeded")
	}
}
