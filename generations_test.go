package repose

import (
	"context"
	"testing"
)

// TestHealthLocalEngine pins the local engine's Health surface: a
// synthetic single-worker snapshot while open, marked down once the
// index closes — so callers (the serve gateway's /healthz) need no
// engine-specific branches.
func TestHealthLocalEngine(t *testing.T) {
	ds := testData(t, 40)
	idx, err := Build(ds, Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := idx.Health()
	if len(h) != 1 || h[0].Addr != "local" || h[0].Down || h[0].StaleParts != 0 {
		t.Fatalf("open local Health() = %+v, want one healthy synthetic worker", h)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	h = idx.Health()
	if len(h) != 1 || !h[0].Down {
		t.Fatalf("closed local Health() = %+v, want the synthetic worker down", h)
	}
}

// TestGenerationsAdvanceAndReport pins the answer-cache contract on
// the public API: Generations() has one monotone entry per
// partition, a mutation's bump is visible by the time the call
// returns, Stats carries the same vector, and queries report the
// vector they dispatched under plus cache eligibility.
func TestGenerationsAdvanceAndReport(t *testing.T) {
	ds := testData(t, 60)
	idx, err := Build(ds, Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	ctx := context.Background()

	gens := idx.Generations()
	if len(gens) != 3 {
		t.Fatalf("Generations() length = %d, want 3", len(gens))
	}
	if st := idx.Stats(); !equalGens(st.Generations, gens) {
		t.Fatalf("Stats.Generations = %v, Generations() = %v", st.Generations, gens)
	}

	if err := idx.Insert(ctx, []*Trajectory{{ID: 900_100, Points: ds[0].Points}}); err != nil {
		t.Fatal(err)
	}
	after := idx.Generations()
	bumped := 0
	for i := range gens {
		if after[i] < gens[i] {
			t.Fatalf("generation %d went backwards: %d -> %d", i, gens[i], after[i])
		}
		if after[i] > gens[i] {
			bumped++
		}
	}
	if bumped == 0 {
		t.Fatalf("insert did not advance any generation: %v -> %v", gens, after)
	}

	var report QueryReport
	if _, err := idx.Search(ctx, ds[5], 5, WithReport(&report)); err != nil {
		t.Fatal(err)
	}
	if !equalGens(report.Generations, after) {
		t.Fatalf("QueryReport.Generations = %v, want %v", report.Generations, after)
	}
	if !report.CacheEligible {
		t.Error("full-coverage query not CacheEligible")
	}

	report = QueryReport{}
	if _, err := idx.Search(ctx, ds[5], 5, WithReport(&report), WithPartitions(0)); err != nil {
		t.Fatal(err)
	}
	if report.CacheEligible {
		t.Error("partition-restricted query reported CacheEligible")
	}
}

func equalGens(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
