module repose

go 1.21
