package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repose"
	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
	"repose/internal/rptrie"
	"repose/internal/topk"
)

// attachBenchTimes timestamps three quarters of the dataset with a
// deterministic ascending clock (sample j of trajectory i gets
// i*7 + j*60), leaving every fourth trajectory untimestamped so the
// windowed benchmarks also exercise the never-matches path.
func attachBenchTimes(ds []*geo.Trajectory) {
	for i, tr := range ds {
		if i%4 == 3 {
			continue
		}
		ts := make([]int64, len(tr.Points))
		for j := range ts {
			ts[j] = int64(i%7) + int64(j)*60
		}
		tr.Times = ts
	}
}

// runBenchSub runs the refined-query micro-benchmark suite —
// subtrajectory top-k, time-windowed top-k, and their combination —
// at the engine level plus the single-partition trie hot path per
// measure, writing BENCH_subtraj.json in the same shape as the plain
// -benchjson report (so -baseline works across the two suites).
func runBenchSub(outPath, baselinePath, dsName string, scale float64, k int) error {
	spec, err := dataset.ByName(dsName, scale)
	if err != nil {
		return err
	}
	ds := dataset.Generate(spec)
	attachBenchTimes(ds)
	queries := dataset.Queries(ds, 10, 999)
	region := spec.Region()
	delta := dataset.DefaultDelta(dsName)

	// The window spans the middle of every timestamped trajectory's
	// clock: refinement does real work instead of degenerating to
	// all-match or none-match.
	const winFrom, winTo = 120, 900

	idx, err := repose.Build(ds, repose.Options{Partitions: 8, Delta: delta})
	if err != nil {
		return err
	}
	defer idx.Close()

	g, err := grid.New(region, delta)
	if err != nil {
		return err
	}
	params := dist.Params{Epsilon: dist.DefaultParams(region).Epsilon, Gap: region.Min}
	buildTrie := func(m dist.Measure) (*rptrie.Trie, error) {
		var pivots []*geo.Trajectory
		if m.IsMetric() {
			pivots = pivot.Select(ds, 5, pivot.DefaultGroups, m, params, 13)
		}
		return rptrie.Build(rptrie.Config{
			Measure: m, Params: params, Grid: g, Pivots: pivots,
			Optimize: m.OrderIndependent(),
		}, ds)
	}

	ctx := context.Background()
	report := benchFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Dataset:   dsName,
		Scale:     scale,
		K:         k,
		Queries:   len(queries),
	}

	record := func(name string, queriesPerOp int, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		ns := float64(r.NsPerOp())
		res := benchResult{
			Name:        name,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if ns > 0 {
			res.QPS = float64(queriesPerOp) * 1e9 / ns
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "%-32s %12.0f ns/op %8d allocs/op %10.0f qps\n",
			name, ns, res.AllocsPerOp, res.QPS)
	}

	record("SearchSub/engine", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if _, err := idx.SearchSub(ctx, q, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("SearchSub+window/engine", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if _, err := idx.SearchSub(ctx, q, k, repose.WithTimeWindow(winFrom, winTo)); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("Search+window/engine", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if _, err := idx.Search(ctx, q, k, repose.WithTimeWindow(winFrom, winTo)); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, m := range dist.Measures() {
		trie, err := buildTrie(m)
		if err != nil {
			return err
		}
		ref := rptrie.NewRefiner(m, params, rptrie.RefineSpec{Sub: true})
		record("SearchSub/trie/"+m.String(), 1, func(b *testing.B) {
			opt := rptrie.SearchOptions{Refiner: ref}
			var out []topk.Item
			var err error
			for _, q := range queries { // warm the pooled scratch
				if out, err = trie.SearchAppendContext(ctx, out[:0], q.Points, k, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if out, err = trie.SearchAppendContext(ctx, out[:0], q.Points, k, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	if baselinePath != "" {
		if err := annotateBaseline(&report, baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "repose-bench: baseline %s ignored: %v\n", baselinePath, err)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}
