package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repose"
	"repose/internal/dataset"
	"repose/internal/serve"
)

// servePhase is one closed-loop load phase against the gateway.
type servePhase struct {
	Name       string  `json:"name"`
	DurationMS int64   `json:"duration_ms"`
	Clients    int     `json:"clients"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	QPS        float64 `json:"qps"`
	P50US      float64 `json:"p50_us"`
	P90US      float64 `json:"p90_us"`
	P99US      float64 `json:"p99_us"`

	CacheHitRatio float64 `json:"cache_hit_ratio"`
	CoalesceRatio float64 `json:"coalesce_ratio"`
	Invalidations int64   `json:"invalidations"`
	Mutations     int64   `json:"mutations,omitempty"`
}

// serveFile is the gateway load report (BENCH_serve.json).
type serveFile struct {
	Generated string       `json:"generated"`
	Dataset   string       `json:"dataset"`
	Scale     float64      `json:"scale"`
	K         int          `json:"k"`
	Phases    []servePhase `json:"phases"`
	// SpeedupCacheOn is phase cache+coalesce QPS over phase cache-off
	// QPS — the number the serving layer exists to raise.
	SpeedupCacheOn float64 `json:"speedup_cache_on"`
}

// runServeJSON load-tests the serve gateway end to end over HTTP
// (loopback) with closed-loop clients and a skewed query mix, in
// three phases: caching+coalescing on, both off (every request runs
// the engine), and caching on under a concurrent mutation stream
// (every mutation invalidates by advancing the generation vector).
func runServeJSON(outPath, dsName string, scale float64, k int, dur time.Duration, clients int) error {
	spec, err := dataset.ByName(dsName, scale)
	if err != nil {
		return err
	}
	ds := dataset.Generate(spec)
	queries := dataset.Queries(ds, 32, 999)
	delta := dataset.DefaultDelta(dsName)

	report := serveFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Dataset:   dsName,
		Scale:     scale,
		K:         k,
	}

	run := func(name string, cfg serve.Config, mutate bool) (servePhase, error) {
		// A fresh index per phase: mutation phases must not leak
		// state into the next phase's dataset.
		idx, err := repose.Build(ds, repose.Options{Partitions: 4, Delta: delta})
		if err != nil {
			return servePhase{}, err
		}
		defer idx.Close()

		gw := serve.New(idx, cfg)
		ts := httptest.NewServer(gw.Handler())
		defer ts.Close()
		defer gw.Shutdown(context.Background())

		stop := make(chan struct{})
		var mutations atomic.Int64
		var mwg sync.WaitGroup
		if mutate {
			mwg.Add(1)
			go func() {
				defer mwg.Done()
				rng := rand.New(rand.NewSource(7))
				nextID := 1 << 20
				for {
					select {
					case <-stop:
						return
					case <-time.After(2 * time.Millisecond):
					}
					tr := ds[rng.Intn(len(ds))]
					cp := &repose.Trajectory{ID: nextID, Points: tr.Points}
					nextID++
					if err := idx.Insert(context.Background(), []*repose.Trajectory{cp}); err != nil {
						return
					}
					mutations.Add(1)
					if nextID%8 == 0 {
						if _, err := idx.Delete(context.Background(), []int{nextID - 4}); err != nil {
							return
						}
						mutations.Add(1)
					}
				}
			}()
		}

		// Closed-loop clients over a skewed mix: 80% of requests
		// draw from the 4 hottest queries (cacheable, coalescable),
		// 20% from the long tail.
		var requests, errors atomic.Int64
		latencies := make([][]time.Duration, clients)
		deadline := time.Now().Add(dur)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(c)))
				client := &http.Client{}
				for time.Now().Before(deadline) {
					var q *repose.Trajectory
					if rng.Float64() < 0.8 {
						q = queries[rng.Intn(4)]
					} else {
						q = queries[rng.Intn(len(queries))]
					}
					body := searchBody(q, k)
					t0 := time.Now()
					resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
					if err != nil {
						errors.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					requests.Add(1)
					if resp.StatusCode != http.StatusOK {
						errors.Add(1)
						continue
					}
					latencies[c] = append(latencies[c], time.Since(t0))
				}
			}(c)
		}
		wg.Wait()
		close(stop)
		mwg.Wait()

		// Pull the gateway's own counters for hit/coalesce ratios.
		var metricsDoc struct {
			Cache struct {
				HitRatio      float64 `json:"hit_ratio"`
				Invalidations int64   `json:"invalidations"`
			} `json:"cache"`
			Coalesce struct {
				Ratio float64 `json:"ratio"`
			} `json:"coalesce"`
		}
		if resp, err := http.Get(ts.URL + "/metrics"); err == nil {
			json.NewDecoder(resp.Body).Decode(&metricsDoc)
			resp.Body.Close()
		}

		var all []time.Duration
		for _, l := range latencies {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(q float64) float64 {
			if len(all) == 0 {
				return 0
			}
			i := int(q * float64(len(all)-1))
			return float64(all[i].Microseconds())
		}
		p := servePhase{
			Name:          name,
			DurationMS:    dur.Milliseconds(),
			Clients:       clients,
			Requests:      requests.Load(),
			Errors:        errors.Load(),
			QPS:           float64(requests.Load()) / dur.Seconds(),
			P50US:         pct(0.50),
			P90US:         pct(0.90),
			P99US:         pct(0.99),
			CacheHitRatio: metricsDoc.Cache.HitRatio,
			CoalesceRatio: metricsDoc.Coalesce.Ratio,
			Invalidations: metricsDoc.Cache.Invalidations,
			Mutations:     mutations.Load(),
		}
		fmt.Fprintf(os.Stderr, "%-16s %8d req %8.0f qps  p50 %6.0fus p99 %8.0fus  hit %.2f coalesce %.2f\n",
			name, p.Requests, p.QPS, p.P50US, p.P99US, p.CacheHitRatio, p.CoalesceRatio)
		return p, nil
	}

	on := serve.Config{MaxConcurrent: 8, MaxQueue: 4 * clients, QueryTimeout: 30 * time.Second}
	off := on
	off.CacheEntries = -1
	off.BatchWindow = -1

	for _, ph := range []struct {
		name   string
		cfg    serve.Config
		mutate bool
	}{
		{"cache+coalesce", on, false},
		{"cache-off", off, false},
		{"mutation-heavy", on, true},
	} {
		p, err := run(ph.name, ph.cfg, ph.mutate)
		if err != nil {
			return err
		}
		report.Phases = append(report.Phases, p)
	}

	if report.Phases[1].QPS > 0 {
		report.SpeedupCacheOn = report.Phases[0].QPS / report.Phases[1].QPS
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}

func searchBody(q *repose.Trajectory, k int) []byte {
	pts := make([][2]float64, len(q.Points))
	for i, p := range q.Points {
		pts[i] = [2]float64{p.X, p.Y}
	}
	b, _ := json.Marshal(map[string]any{"points": pts, "k": k})
	return b
}
