package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repose"
	"repose/internal/dataset"
	"repose/internal/dist"
)

// rebalPhase is one closed-loop load phase against the remote engine.
type rebalPhase struct {
	Name       string  `json:"name"`
	DurationMS int64   `json:"duration_ms"`
	Clients    int     `json:"clients"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	QPS        float64 `json:"qps"`
	P50US      float64 `json:"p50_us"`
	P99US      float64 `json:"p99_us"`
}

// rebalFile is the rebalancing report (BENCH_rebalance.json).
type rebalFile struct {
	Generated  string  `json:"generated"`
	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	K          int     `json:"k"`
	Workers    int     `json:"workers"`
	Partitions int     `json:"partitions"`
	// CPUs is the harness machine's core count. On one core the
	// before/after phases are both bound by total machine CPU, not by
	// the hot worker's scan slot, so the tail-latency comparison only
	// carries signal when CPUs >= 2 — consumers (CI) gate on it.
	CPUs int `json:"cpus"`

	// The migration decision the driver made between the phases.
	Moved         bool   `json:"moved"`
	HotPartition  int    `json:"hot_partition"`
	MigratedFrom  string `json:"migrated_from"`
	MigratedTo    string `json:"migrated_to"`
	RebalanceOkMS int64  `json:"rebalance_ms"`

	Phases []rebalPhase `json:"phases"`
	// SpeedupP99 is skewed-before p99 over skewed-after p99: how much
	// the tail flattens once the hot worker's colocated partitions are
	// spread out.
	SpeedupP99 float64 `json:"speedup_p99"`
	SpeedupQPS float64 `json:"speedup_qps"`
}

// runRebalanceJSON measures what live rebalancing buys under a skewed
// workload. Three workers serve four partitions with no replication,
// so two partitions are colocated on worker 0; every query probes
// exactly that hot pair while the cold partitions idle. Each worker's
// concurrent scans are capped at one, so the colocated pair serializes
// — the saturation the rebalancer exists to fix. The harness measures
// tail latency, migrates via Rebalance (queries keep flowing), and
// measures again.
func runRebalanceJSON(outPath, dsName string, scale float64, k int, dur time.Duration, clients int) error {
	spec, err := dataset.ByName(dsName, scale)
	if err != nil {
		return err
	}
	ds := dataset.Generate(spec)
	queries := dataset.Queries(ds, 16, 777)
	delta := dataset.DefaultDelta(dsName)

	// Three single-scan workers on loopback.
	ctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	const nWorkers = 3
	addrs := make([]string, nWorkers)
	var started sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		started.Add(1)
		i := i
		go func() {
			repose.ServeWorkerOptions(ctx, "127.0.0.1:0", repose.WorkerOptions{QueryWorkers: 1}, func(bound string) {
				addrs[i] = bound
				started.Done()
			})
		}()
	}
	started.Wait()

	// DTW refinement makes each partition scan expensive relative to
	// the fixed per-RPC overhead, so the hot worker's scan slot — not
	// request plumbing — is what saturates under skew.
	idx, err := repose.BuildRemote(ds, repose.Options{Partitions: 4, Delta: delta, Measure: dist.DTW}, addrs)
	if err != nil {
		return err
	}
	defer idx.Close()

	report := rebalFile{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Dataset:    dsName,
		Scale:      scale,
		K:          k,
		Workers:    nWorkers,
		Partitions: 4,
		CPUs:       runtime.NumCPU(),
	}

	// Every request probes the colocated pair {0, 3} — both live on
	// worker 0 under the driver's round-robin placement.
	hotPair := []int{0, 3}
	run := func(name string) rebalPhase {
		var requests, errors atomic.Int64
		latencies := make([][]time.Duration, clients)
		deadline := time.Now().Add(dur)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(c)))
				for time.Now().Before(deadline) {
					q := queries[rng.Intn(len(queries))]
					t0 := time.Now()
					_, err := idx.Search(context.Background(), q, k, repose.WithPartitions(hotPair...))
					if err != nil {
						errors.Add(1)
						continue
					}
					requests.Add(1)
					latencies[c] = append(latencies[c], time.Since(t0))
				}
			}(c)
		}
		wg.Wait()

		var all []time.Duration
		for _, l := range latencies {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(q float64) float64 {
			if len(all) == 0 {
				return 0
			}
			return float64(all[int(q*float64(len(all)-1))].Microseconds())
		}
		p := rebalPhase{
			Name:       name,
			DurationMS: dur.Milliseconds(),
			Clients:    clients,
			Requests:   requests.Load(),
			Errors:     errors.Load(),
			QPS:        float64(requests.Load()) / dur.Seconds(),
			P50US:      pct(0.50),
			P99US:      pct(0.99),
		}
		fmt.Fprintf(os.Stderr, "%-14s %8d req %8.0f qps  p50 %6.0fus p99 %8.0fus  errors %d\n",
			name, p.Requests, p.QPS, p.P50US, p.P99US, p.Errors)
		return p
	}

	report.Phases = append(report.Phases, run("skewed-before"))

	t0 := time.Now()
	rep, err := idx.Rebalance(context.Background())
	if err != nil {
		return fmt.Errorf("rebalance: %w", err)
	}
	report.RebalanceOkMS = time.Since(t0).Milliseconds()
	report.Moved = rep.Moved
	report.HotPartition = rep.Partition
	report.MigratedFrom = rep.From
	report.MigratedTo = rep.To
	if !rep.Moved {
		return fmt.Errorf("rebalance declined to move under a skewed load")
	}
	fmt.Fprintf(os.Stderr, "migrated partition %d: %s -> %s in %dms\n",
		rep.Partition, rep.From, rep.To, report.RebalanceOkMS)

	report.Phases = append(report.Phases, run("skewed-after"))

	if after := report.Phases[1]; after.P99US > 0 {
		report.SpeedupP99 = report.Phases[0].P99US / after.P99US
	}
	if before := report.Phases[0]; before.QPS > 0 {
		report.SpeedupQPS = report.Phases[1].QPS / before.QPS
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}
