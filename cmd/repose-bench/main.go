// Command repose-bench regenerates the paper's tables and figures,
// and doubles as the query micro-benchmark harness.
//
// Usage:
//
//	repose-bench -exp table4 -scale 0.015625 -partitions 64 -k 100
//	repose-bench -exp all -csv out/
//	repose-bench -benchjson BENCH_search.json -baseline BENCH_search.json
//
// Each experiment prints the same rows/series the paper reports;
// EXPERIMENTS.md records how the shapes compare. -benchjson skips the
// experiments and instead runs the query micro-benchmark suite
// (engine-level Search/SearchRadius/SearchBatch plus the
// single-partition trie hot path per measure) on a synthetic dataset,
// writing ns/op, allocs/op, and QPS as machine-readable JSON;
// -baseline annotates each result with the speedup over an earlier
// report.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repose/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id ("+strings.Join(experiments.ExperimentIDs, ", ")+") or 'all'")
		scale      = flag.Float64("scale", 1.0/512, "dataset cardinality scale relative to the paper")
		partitions = flag.Int("partitions", 8, "number of global partitions")
		workers    = flag.Int("workers", 0, "parallelism cap (0 = GOMAXPROCS)")
		k          = flag.Int("k", 10, "top-k result size")
		queries    = flag.Int("queries", 5, "queries averaged per measurement")
		datasets   = flag.String("datasets", "", "comma-separated dataset subset (default: the experiment's paper datasets)")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
		verbose    = flag.Bool("v", false, "stream progress")
		benchJSON  = flag.String("benchjson", "", "run the query micro-benchmark suite and write JSON results to this path (skips -exp)")
		baseline   = flag.String("baseline", "", "earlier -benchjson report to compute speedups against")
		benchData  = flag.String("benchdataset", "T-drive", "dataset for -benchjson")
		subJSON    = flag.String("subjson", "", "run the refined-query micro-benchmark suite (subtrajectory and time-windowed search) and write JSON results to this path (skips -exp)")
		storJSON   = flag.String("storagejson", "", "run the cold-start benchmark suite (WAL replay vs rebuild vs peer restore) and write JSON results to this path (skips -exp)")
		memJSON    = flag.String("memjson", "", "run the per-layout memory benchmark (index bytes, snapshot image bytes, search latency) and write JSON results to this path (skips -exp)")
		memDelta   = flag.Float64("memdelta", 0.01, "grid delta for -memjson; 0 uses the dataset's experiment default (the bench defaults to a fine grid, the regime where index layout matters)")
		serveJSON  = flag.String("servejson", "", "run the serve-gateway closed-loop load test (cache+coalesce vs cache-off vs mutation-heavy) and write JSON results to this path (skips -exp)")
		serveDur   = flag.Duration("serveduration", 2*time.Second, "per-phase duration for -servejson and -rebalancejson")
		serveConc  = flag.Int("serveclients", 16, "closed-loop client count for -servejson")
		rebalJSON  = flag.String("rebalancejson", "", "run the live-rebalancing skew harness (tail latency before vs after migrating a hot partition) and write JSON results to this path (skips -exp)")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *baseline, *benchData, *scale, *k); err != nil {
			fmt.Fprintf(os.Stderr, "repose-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *subJSON != "" {
		if err := runBenchSub(*subJSON, *baseline, *benchData, *scale, *k); err != nil {
			fmt.Fprintf(os.Stderr, "repose-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storJSON != "" {
		if err := runBenchStorage(*storJSON, *benchData, *scale, *k); err != nil {
			fmt.Fprintf(os.Stderr, "repose-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *memJSON != "" {
		if err := runBenchMemory(*memJSON, *benchData, *scale, *memDelta, *k); err != nil {
			fmt.Fprintf(os.Stderr, "repose-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveJSON != "" {
		if err := runServeJSON(*serveJSON, *benchData, *scale, *k, *serveDur, *serveConc); err != nil {
			fmt.Fprintf(os.Stderr, "repose-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *rebalJSON != "" {
		if err := runRebalanceJSON(*rebalJSON, *benchData, *scale, *k, *serveDur, 8); err != nil {
			fmt.Fprintf(os.Stderr, "repose-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{
		Scale:      *scale,
		Partitions: *partitions,
		Workers:    *workers,
		K:          *k,
		Queries:    *queries,
		Verbose:    *verbose,
		Out:        os.Stderr,
	}
	var subset []string
	if *datasets != "" {
		subset = strings.Split(*datasets, ",")
	}

	ids := experiments.ExperimentIDs
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		runner, ok := experiments.Runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "repose-bench: unknown experiment %q (have: %s)\n",
				id, strings.Join(experiments.ExperimentIDs, ", "))
			os.Exit(2)
		}
		table, err := runner(cfg, subset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repose-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := table.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "repose-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, table); err != nil {
				fmt.Fprintf(os.Stderr, "repose-bench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir, id string, table *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	if err := table.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
