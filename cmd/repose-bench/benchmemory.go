package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
	"repose/internal/rptrie"
	"repose/internal/topk"
)

// memFile is the BENCH_memory.json shape: per-layout footprint and
// latency over one shared dataset, plus the headline ratios.
type memFile struct {
	Generated string  `json:"generated"`
	Dataset   string  `json:"dataset"`
	Scale     float64 `json:"scale"`
	Delta     float64 `json:"delta"`
	K         int     `json:"k"`
	Queries   int     `json:"queries"`
	Nodes     int     `json:"trie_nodes"`

	Layouts []memLayout `json:"layouts"`
	Ratios  memRatios   `json:"ratios"`
}

type memLayout struct {
	Layout string `json:"layout"`
	// IndexBytes is the live in-memory footprint of the index
	// structure (SizeBytes, excluding raw trajectories).
	IndexBytes int `json:"index_bytes"`
	// ImageBytes is the Save image size — what a Snapshot/Restore
	// failover transfer or a durable checkpoint ships.
	ImageBytes        int     `json:"image_bytes"`
	SearchNsPerOp     float64 `json:"search_ns_per_op"`
	SearchAllocsPerOp int64   `json:"search_allocs_per_op"`
	// BitIdentical reports that this layout answered every query with
	// exactly the pointer layout's results.
	BitIdentical bool `json:"bit_identical_to_pointer"`
}

type memRatios struct {
	IndexSuccinctOverCompressed  float64 `json:"index_succinct_over_compressed"`
	ImageSuccinctOverCompressed  float64 `json:"image_succinct_over_compressed"`
	IndexPointerOverCompressed   float64 `json:"index_pointer_over_compressed"`
	ImagePointerOverCompressed   float64 `json:"image_pointer_over_compressed"`
	SearchCompressedOverSuccinct float64 `json:"search_compressed_over_succinct"`
}

// runBenchMemory builds the same partition under all three layouts and
// records index bytes, snapshot image bytes, and top-k search latency
// (BENCH_memory.json). Every layout's results are checked query by
// query against the pointer layout: the memory savings come at zero
// answer drift, which is what makes the layouts interchangeable.
//
// delta sets the grid cell size; 0 means the dataset's experiment
// default. The default for -memjson is finer than DefaultDelta: index
// layout only matters in the fine-grid regime where the trie is a
// material fraction of the partition, which is exactly when an
// operator would reach for LayoutCompressed.
func runBenchMemory(outPath, dsName string, scale, delta float64, k int) error {
	spec, err := dataset.ByName(dsName, scale)
	if err != nil {
		return err
	}
	ds := dataset.Generate(spec)
	queries := dataset.Queries(ds, 10, 999)
	region := spec.Region()
	if delta == 0 {
		delta = dataset.DefaultDelta(dsName)
	}
	g, err := grid.New(region, delta)
	if err != nil {
		return err
	}
	params := dist.Params{Epsilon: dist.DefaultParams(region).Epsilon, Gap: region.Min}
	cfg := rptrie.Config{
		Measure: dist.Hausdorff, Params: params, Grid: g,
		Pivots:   pivot.Select(ds, 5, pivot.DefaultGroups, dist.Hausdorff, params, 13),
		Optimize: true,
	}

	trie, err := rptrie.Build(cfg, ds)
	if err != nil {
		return err
	}
	suc, err := rptrie.Compress(trie)
	if err != nil {
		return err
	}
	cmp, err := rptrie.CompressTST(trie)
	if err != nil {
		return err
	}

	// The pointer layout's answers are the reference.
	want := make([][]topk.Item, len(queries))
	for i, q := range queries {
		want[i] = trie.Search(q.Points, k)
	}

	report := memFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Dataset:   dsName,
		Scale:     scale,
		Delta:     delta,
		K:         k,
		Queries:   len(queries),
		Nodes:     cmp.NumNodes(),
	}

	type layoutCase struct {
		name   string
		size   func() int
		save   func(io.Writer) error
		search func(dst []topk.Item, pts []geo.Point, k int) []topk.Item
	}
	cases := []layoutCase{
		{"pointer", trie.SizeBytes, trie.Save, trie.SearchAppend},
		{"succinct", suc.SizeBytes, suc.Save, suc.SearchAppend},
		{"compressed", cmp.SizeBytes, cmp.Save, cmp.SearchAppend},
	}

	byName := map[string]*memLayout{}
	for _, c := range cases {
		var image bytes.Buffer
		if err := c.save(&image); err != nil {
			return fmt.Errorf("%s: save: %w", c.name, err)
		}
		identical := true
		var out []topk.Item
		for i, q := range queries {
			out = c.search(out[:0], q.Points, k)
			if len(out) != len(want[i]) {
				identical = false
				break
			}
			for j := range out {
				if out[j] != want[i][j] {
					identical = false
					break
				}
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			var out []topk.Item
			for _, q := range queries { // warm the pooled scratch
				out = c.search(out[:0], q.Points, k)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				out = c.search(out[:0], q.Points, k)
			}
		})
		l := memLayout{
			Layout:            c.name,
			IndexBytes:        c.size(),
			ImageBytes:        image.Len(),
			SearchNsPerOp:     float64(r.NsPerOp()),
			SearchAllocsPerOp: r.AllocsPerOp(),
			BitIdentical:      identical,
		}
		report.Layouts = append(report.Layouts, l)
		byName[c.name] = &report.Layouts[len(report.Layouts)-1]
		fmt.Fprintf(os.Stderr, "%-10s index %9d B  image %9d B  search %10.0f ns/op %4d allocs/op  bit-identical=%v\n",
			c.name, l.IndexBytes, l.ImageBytes, l.SearchNsPerOp, l.SearchAllocsPerOp, identical)
	}

	p, s, c := byName["pointer"], byName["succinct"], byName["compressed"]
	report.Ratios = memRatios{
		IndexSuccinctOverCompressed:  ratio(s.IndexBytes, c.IndexBytes),
		ImageSuccinctOverCompressed:  ratio(s.ImageBytes, c.ImageBytes),
		IndexPointerOverCompressed:   ratio(p.IndexBytes, c.IndexBytes),
		ImagePointerOverCompressed:   ratio(p.ImageBytes, c.ImageBytes),
		SearchCompressedOverSuccinct: c.SearchNsPerOp / s.SearchNsPerOp,
	}
	fmt.Fprintf(os.Stderr, "index succinct/compressed = %.2fx  image succinct/compressed = %.2fx  search compressed/succinct = %.2fx\n",
		report.Ratios.IndexSuccinctOverCompressed, report.Ratios.ImageSuccinctOverCompressed,
		report.Ratios.SearchCompressedOverSuccinct)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
