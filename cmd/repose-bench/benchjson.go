package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repose"
	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
	"repose/internal/rptrie"
)

// benchResult is one micro-benchmark measurement. BaselineNsPerOp and
// Speedup are filled when a baseline file provides a result of the
// same name.
type benchResult struct {
	Name            string  `json:"name"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	QPS             float64 `json:"qps"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// benchFile is the machine-readable bench report (BENCH_search.json).
type benchFile struct {
	Generated  string        `json:"generated"`
	Dataset    string        `json:"dataset"`
	Scale      float64       `json:"scale"`
	K          int           `json:"k"`
	Queries    int           `json:"queries"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// runBenchJSON runs the query micro-benchmark suite on a synthetic
// dataset and writes the results as JSON. A baseline file (a previous
// run, or hand-recorded pre-change numbers) annotates each matching
// result with its old ns/op and the speedup factor.
func runBenchJSON(outPath, baselinePath, dsName string, scale float64, k int) error {
	spec, err := dataset.ByName(dsName, scale)
	if err != nil {
		return err
	}
	ds := dataset.Generate(spec)
	queries := dataset.Queries(ds, 10, 999)
	region := spec.Region()
	delta := dataset.DefaultDelta(dsName)

	idx, err := repose.Build(ds, repose.Options{Partitions: 8, Delta: delta})
	if err != nil {
		return err
	}
	defer idx.Close()

	g, err := grid.New(region, delta)
	if err != nil {
		return err
	}
	params := dist.Params{Epsilon: dist.DefaultParams(region).Epsilon, Gap: region.Min}
	buildTrie := func(m dist.Measure) (*rptrie.Trie, error) {
		var pivots []*geo.Trajectory
		if m.IsMetric() {
			pivots = pivot.Select(ds, 5, pivot.DefaultGroups, m, params, 13)
		}
		return rptrie.Build(rptrie.Config{
			Measure: m, Params: params, Grid: g, Pivots: pivots,
			Optimize: m.OrderIndependent(),
		}, ds)
	}

	ctx := context.Background()
	radius := region.Max.Dist(region.Min) / 8
	report := benchFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Dataset:   dsName,
		Scale:     scale,
		K:         k,
		Queries:   len(queries),
	}

	record := func(name string, queriesPerOp int, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		ns := float64(r.NsPerOp())
		res := benchResult{
			Name:        name,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if ns > 0 {
			res.QPS = float64(queriesPerOp) * 1e9 / ns
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %8d allocs/op %10.0f qps\n",
			name, ns, res.AllocsPerOp, res.QPS)
	}

	record("Search/engine", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if _, err := idx.Search(ctx, q, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("SearchRadius/engine", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if _, err := idx.SearchRadius(ctx, q, radius); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("SearchBatch/engine", len(queries), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.SearchBatch(ctx, queries, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, m := range dist.Measures() {
		trie, err := buildTrie(m)
		if err != nil {
			return err
		}
		record("Search/trie/"+m.String(), 1, func(b *testing.B) {
			var out []repose.Result
			for _, q := range queries { // warm the pooled scratch
				out = trie.SearchAppend(out[:0], q.Points, k)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				out = trie.SearchAppend(out[:0], q.Points, k)
			}
		})
	}

	if baselinePath != "" {
		if err := annotateBaseline(&report, baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "repose-bench: baseline %s ignored: %v\n", baselinePath, err)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}

// annotateBaseline fills baseline ns/op and speedup from an earlier
// report, matching results by name.
func annotateBaseline(report *benchFile, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return err
	}
	byName := make(map[string]benchResult, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	for i := range report.Benchmarks {
		b, ok := byName[report.Benchmarks[i].Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		report.Benchmarks[i].BaselineNsPerOp = b.NsPerOp
		if report.Benchmarks[i].NsPerOp > 0 {
			report.Benchmarks[i].Speedup = b.NsPerOp / report.Benchmarks[i].NsPerOp
		}
	}
	return nil
}
