package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/grid"
	"repose/internal/pivot"
	"repose/internal/rptrie"
)

// runBenchStorage measures the three ways a partition comes back after
// its process dies, for each trie layout (BENCH_storage.json):
//
//   - coldstart/rebuild: reindex the dataset from trajectories already
//     in memory — what a non-durable worker pays on every restart,
//     assuming something else preserved the data.
//   - coldstart/walreplay: rptrie.OpenDurable on a data directory —
//     load the newest checkpoint image and replay the WAL tail. This
//     is the -data-dir restart path.
//   - coldstart/restore: decode a peer's Save image — the receiver
//     side of the PR 5 Snapshot/Restore heal (shipping the bytes over
//     the wire comes on top of this).
//
// Every measurement includes one warm-up query so partially built
// lazy state cannot hide in the numbers.
func runBenchStorage(outPath, dsName string, scale float64, k int) error {
	spec, err := dataset.ByName(dsName, scale)
	if err != nil {
		return err
	}
	ds := dataset.Generate(spec)
	queries := dataset.Queries(ds, 4, 999)
	region := spec.Region()

	g, err := grid.New(region, dataset.DefaultDelta(dsName))
	if err != nil {
		return err
	}
	params := dist.Params{Epsilon: dist.DefaultParams(region).Epsilon, Gap: region.Min}
	cfg := rptrie.Config{
		Measure: dist.Hausdorff, Params: params, Grid: g,
		Pivots:   pivot.Select(ds, 5, pivot.DefaultGroups, dist.Hausdorff, params, 13),
		Optimize: true,
	}

	// The mutation tail a restart must replay: half the build set is
	// inserted after the initial checkpoint, in small batches, so the
	// WAL carries a realistic record count instead of one fat batch.
	half := len(ds) / 2
	base, tail := ds[:half], ds[half:]

	report := benchFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Dataset:   dsName,
		Scale:     scale,
		K:         k,
		Queries:   len(queries),
	}
	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		ns := float64(r.NsPerOp())
		res := benchResult{
			Name:        name,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "%-34s %14.0f ns/op %10d allocs/op\n", name, ns, res.AllocsPerOp)
	}

	tmp, err := os.MkdirTemp("", "repose-bench-storage-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	for _, layout := range []struct {
		name   string
		layout rptrie.Layout
	}{
		{"trie", rptrie.LayoutPointer},
		{"succinct", rptrie.LayoutSuccinct},
		{"compressed", rptrie.LayoutCompressed},
	} {
		opts := rptrie.DurableOptions{Layout: layout.layout, NoCheckpointOnCompact: true}

		// Stage the durable directory once: build on the first half,
		// then journal the tail as insert batches.
		dir := filepath.Join(tmp, layout.name)
		d, err := rptrie.BuildDurable(dir, cfg, base, opts)
		if err != nil {
			return err
		}
		const batch = 32
		for i := 0; i < len(tail); i += batch {
			j := i + batch
			if j > len(tail) {
				j = len(tail)
			}
			if err := d.Insert(tail[i:j]...); err != nil {
				return err
			}
		}
		var image bytes.Buffer
		if err := d.Save(&image); err != nil {
			return err
		}
		wantLen := d.Len()
		if err := d.Close(); err != nil {
			return err
		}

		record("coldstart/walreplay/"+layout.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := rptrie.OpenDurable(dir, opts)
				if err != nil {
					b.Fatal(err)
				}
				if r.Len() != wantLen {
					b.Fatalf("replayed %d trajectories, want %d", r.Len(), wantLen)
				}
				r.Search(queries[0].Points, k)
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("coldstart/rebuild/"+layout.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t, err := rptrie.Build(cfg, ds)
				if err != nil {
					b.Fatal(err)
				}
				switch layout.layout {
				case rptrie.LayoutSuccinct:
					s, err := rptrie.Compress(t)
					if err != nil {
						b.Fatal(err)
					}
					s.Search(queries[0].Points, k)
				case rptrie.LayoutCompressed:
					c, err := rptrie.CompressTST(t)
					if err != nil {
						b.Fatal(err)
					}
					c.Search(queries[0].Points, k)
				default:
					t.Search(queries[0].Points, k)
				}
			}
		})
		record("coldstart/restore/"+layout.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				switch layout.layout {
				case rptrie.LayoutSuccinct:
					s, err := rptrie.ReadSuccinct(bytes.NewReader(image.Bytes()))
					if err != nil {
						b.Fatal(err)
					}
					s.Search(queries[0].Points, k)
				case rptrie.LayoutCompressed:
					c, err := rptrie.ReadCompressed(bytes.NewReader(image.Bytes()))
					if err != nil {
						b.Fatal(err)
					}
					c.Search(queries[0].Points, k)
				default:
					t, err := rptrie.ReadTrie(bytes.NewReader(image.Bytes()))
					if err != nil {
						b.Fatal(err)
					}
					t.Search(queries[0].Points, k)
				}
			}
		})
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}
