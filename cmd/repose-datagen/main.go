// Command repose-datagen emits synthetic stand-ins for the paper's
// datasets as CSV files (one line per trajectory: id,x1,y1,x2,y2,…).
//
// Usage:
//
//	repose-datagen -dataset T-drive -scale 0.015625 -out tdrive.csv
//	repose-datagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repose/internal/dataset"
)

func main() {
	var (
		name  = flag.String("dataset", "T-drive", "dataset name (see -list)")
		scale = flag.Float64("scale", 1.0/512, "cardinality scale relative to the paper")
		out   = flag.String("out", "", "output CSV path (default stdout)")
		list  = flag.Bool("list", false, "list available datasets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %12s %8s %18s\n", "NAME", "CARDINALITY", "AVGLEN", "SPAN")
		for _, s := range dataset.PaperSpecs(*scale) {
			fmt.Printf("%-10s %12d %8d %9.2f x %6.2f\n", s.Name, s.Cardinality, s.AvgLen, s.SpanX, s.SpanY)
		}
		return
	}

	spec, err := dataset.ByName(*name, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repose-datagen: %v\n", err)
		os.Exit(2)
	}
	ds := dataset.Generate(spec)
	if *out == "" {
		if err := dataset.Write(os.Stdout, ds); err != nil {
			fmt.Fprintf(os.Stderr, "repose-datagen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := dataset.Save(*out, ds); err != nil {
		fmt.Fprintf(os.Stderr, "repose-datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d trajectories to %s\n", len(ds), *out)
}
