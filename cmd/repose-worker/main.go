// Command repose-worker runs one cluster worker process. The driver
// (repose.BuildCluster or the examples/distributed program) ships it
// partitions over TCP and broadcasts queries to it.
//
// Usage:
//
//	repose-worker -addr 127.0.0.1:7701 &
//	repose-worker -addr 127.0.0.1:7702 &
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repose"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7701", "listen address (host:port, :0 for ephemeral)")
	flag.Parse()

	log.SetPrefix("repose-worker: ")
	err := repose.ServeWorker(*addr, func(bound string) {
		fmt.Printf("listening on %s\n", bound)
	})
	if err != nil {
		log.Print(err)
		os.Exit(1)
	}
}
