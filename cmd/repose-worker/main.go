// Command repose-worker runs one cluster worker process. The driver
// (repose.BuildRemote or the examples/distributed program) ships it
// partitions over TCP and broadcasts queries to it. SIGINT/SIGTERM
// shut it down cleanly by closing the listener.
//
// Usage:
//
//	repose-worker -addr 127.0.0.1:7701 &
//	repose-worker -addr 127.0.0.1:7702 &
//
// Replacing a dead worker in a replicated cluster (the driver's
// failure detector streams the partition state back automatically):
//
//	repose-worker -addr 127.0.0.1:7701 -rejoin &
//
// With -data-dir the worker keeps every partition on disk (checkpoint
// + write-ahead log) and a restart on the same directory recovers
// them locally — the driver re-admits the worker without streaming
// state from a peer when the recovered generations are current:
//
//	repose-worker -addr 127.0.0.1:7701 -data-dir /var/lib/repose/w1 &
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repose"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7701", "listen address (host:port, :0 for ephemeral)")
	rejoin := flag.Bool("rejoin", false, "rejoin a replicated cluster as the replacement for a dead worker: start empty and await a state restore from the driver")
	dataDir := flag.String("data-dir", "", "directory for durable partition stores; a restart on the same directory recovers them from their write-ahead logs")
	layout := flag.String("layout", "", "force every partition this worker builds to this index layout (pointer|succinct|compressed), overriding the driver; answers are identical across layouts")
	queryWorkers := flag.Int("query-workers", 0, "cap this worker's total concurrent partition scans across all in-flight queries (0 = GOMAXPROCS per query)")
	flag.Parse()

	log.SetPrefix("repose-worker: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := repose.ServeWorkerOptions(ctx, *addr, repose.WorkerOptions{Rejoin: *rejoin, DataDir: *dataDir, Layout: *layout, QueryWorkers: *queryWorkers}, func(bound string) {
		fmt.Printf("listening on %s (protocol v%d)\n", bound, repose.ProtocolVersion)
		if *rejoin {
			log.Print("rejoin mode: awaiting state restore from the driver")
		}
		if *dataDir != "" {
			log.Printf("durable partitions under %s", *dataDir)
		}
		if *layout != "" {
			log.Printf("forcing the %s layout on every partition built here", *layout)
		}
		if *queryWorkers > 0 {
			log.Printf("capping concurrent partition scans at %d", *queryWorkers)
		}
	})
	if errors.Is(err, context.Canceled) {
		log.Print("shutting down")
		return
	}
	if err != nil {
		log.Print(err)
		os.Exit(1)
	}
}
