// Command repose-worker runs one cluster worker process. The driver
// (repose.BuildRemote or the examples/distributed program) ships it
// partitions over TCP and broadcasts queries to it. SIGINT/SIGTERM
// shut it down cleanly by closing the listener.
//
// Usage:
//
//	repose-worker -addr 127.0.0.1:7701 &
//	repose-worker -addr 127.0.0.1:7702 &
//
// Replacing a dead worker in a replicated cluster (the driver's
// failure detector streams the partition state back automatically):
//
//	repose-worker -addr 127.0.0.1:7701 -rejoin &
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repose"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7701", "listen address (host:port, :0 for ephemeral)")
	rejoin := flag.Bool("rejoin", false, "rejoin a replicated cluster as the replacement for a dead worker: start empty and await a state restore from the driver")
	flag.Parse()

	log.SetPrefix("repose-worker: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := repose.ServeWorkerOptions(ctx, *addr, repose.WorkerOptions{Rejoin: *rejoin}, func(bound string) {
		fmt.Printf("listening on %s (protocol v%d)\n", bound, repose.ProtocolVersion)
		if *rejoin {
			log.Print("rejoin mode: awaiting state restore from the driver")
		}
	})
	if errors.Is(err, context.Canceled) {
		log.Print("shutting down")
		return
	}
	if err != nil {
		log.Print(err)
		os.Exit(1)
	}
}
