// Command repose-serve runs the HTTP/JSON query gateway over a
// repose index: bounded-concurrency admission control, per-client
// rate limiting, a generation-keyed answer cache, and request
// coalescing in front of the engine (package repose/internal/serve).
//
// Usage:
//
//	repose-serve -dataset T-drive -scale 0.002 -addr :8080
//	repose-serve -data rides.csv -measure Frechet -addr :8080
//	repose-serve -dataset Xian -workers 127.0.0.1:7701,127.0.0.1:7702
//
// Endpoints:
//
//	POST /search   {"points":[[x,y],...],"k":10}
//	POST /radius   {"points":[[x,y],...],"radius":0.05}
//	GET  /healthz
//	GET  /metrics
//
// SIGINT/SIGTERM drains gracefully: new queries get 503 while
// in-flight requests finish (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repose"
	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		data        = flag.String("data", "", "CSV dataset path (id,x1,y1,x2,y2,...)")
		dsName      = flag.String("dataset", "", "generate a synthetic dataset instead of -data")
		scale       = flag.Float64("scale", 1.0/512, "synthetic dataset scale")
		measureName = flag.String("measure", "Hausdorff", "Hausdorff|Frechet|DTW|LCSS|EDR|ERP")
		delta       = flag.Float64("delta", 0, "grid cell side δ (0 = span/64)")
		partitions  = flag.Int("partitions", 0, "partitions (0 = one per core)")
		workers     = flag.String("workers", "", "comma-separated worker addresses (empty = in-process)")
		replication = flag.Int("replication", 0, "remote replication factor (0/1 = off)")
		layoutName  = flag.String("layout", "", "per-partition index layout: pointer|succinct|compressed (empty = pointer)")

		maxConcurrent = flag.Int("max-concurrent", 0, "executing-query bound (0 = 2×NumCPU)")
		maxQueue      = flag.Int("max-queue", 0, "admission queue depth (0 = 4×max-concurrent)")
		rate          = flag.Float64("rate", 0, "per-client sustained requests/second (0 = unlimited)")
		burst         = flag.Int("burst", 0, "per-client burst size (0 = 2×rate)")
		cacheEntries  = flag.Int("cache-entries", 4096, "answer cache capacity (-1 disables)")
		batchWindow   = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch collection window (-1ns disables batching)")
		maxBatch      = flag.Int("max-batch", 32, "dispatch a micro-batch early at this size")
		queryTimeout  = flag.Duration("query-timeout", 30*time.Second, "per-engine-call deadline")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	)
	flag.Parse()
	log.SetPrefix("repose-serve: ")

	m, err := dist.ParseMeasure(*measureName)
	if err != nil {
		fail(err)
	}
	ds, err := loadData(*data, *dsName, *scale)
	if err != nil {
		fail(err)
	}

	layout, err := repose.ParseLayout(*layoutName)
	if err != nil {
		fail(err)
	}
	opts := repose.Options{Measure: m, Delta: *delta, Partitions: *partitions, Layout: layout}
	start := time.Now()
	var idx *repose.Index
	if *workers != "" {
		idx, err = repose.BuildRemote(ds, opts, strings.Split(*workers, ","), repose.WithReplication(*replication))
	} else {
		idx, err = repose.Build(ds, opts)
	}
	if err != nil {
		fail(err)
	}
	defer idx.Close()
	st := idx.Stats()
	log.Printf("built %s index (%v layout): %d trajectories, %d partitions, %.2f MB in %v",
		idx.Engine(), st.Layout, st.Trajectories, st.Partitions, float64(st.IndexBytes)/(1<<20), time.Since(start).Round(time.Millisecond))

	gw := serve.New(idx, serve.Config{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		RatePerClient: *rate,
		Burst:         *burst,
		CacheEntries:  *cacheEntries,
		BatchWindow:   *batchWindow,
		MaxBatch:      *maxBatch,
		QueryTimeout:  *queryTimeout,
	})

	srv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on http://%s (measure %v)", *addr, m)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	log.Print("draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := gw.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("stopped")
}

func loadData(path, name string, scale float64) ([]*geo.Trajectory, error) {
	switch {
	case path != "":
		return dataset.Load(path)
	case name != "":
		spec, err := dataset.ByName(name, scale)
		if err != nil {
			return nil, err
		}
		return dataset.Generate(spec), nil
	default:
		return nil, fmt.Errorf("one of -data or -dataset is required")
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "repose-serve: %v\n", err)
	os.Exit(1)
}
