// Command repose-query builds an index over a CSV dataset (or a
// generated synthetic one) and answers ad-hoc top-k queries. With
// -workers it ships the partitions to running repose-worker processes
// and queries them over TCP instead — the query surface is identical
// either way.
//
// Usage:
//
//	repose-query -data rides.csv -measure Frechet -k 5 -qid 17
//	repose-query -dataset T-drive -scale 0.002 -k 10 -qid 3
//	repose-query -dataset Xian -workers 127.0.0.1:7701,127.0.0.1:7702 -qid 3
//
// The query is the dataset trajectory with id -qid (dropped from the
// candidates when -exclude-self is set).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repose"
	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/geo"
)

func main() {
	var (
		data        = flag.String("data", "", "CSV dataset path (id,x1,y1,x2,y2,...)")
		dsName      = flag.String("dataset", "", "generate a synthetic dataset instead of -data")
		scale       = flag.Float64("scale", 1.0/512, "synthetic dataset scale")
		measureName = flag.String("measure", "Hausdorff", "Hausdorff|Frechet|DTW|LCSS|EDR|ERP")
		k           = flag.Int("k", 10, "result size")
		qid         = flag.Int("qid", 0, "query trajectory id")
		delta       = flag.Float64("delta", 0, "grid cell side δ (0 = span/64)")
		partitions  = flag.Int("partitions", 0, "partitions (0 = one per core)")
		workers     = flag.String("workers", "", "comma-separated worker addresses (empty = in-process)")
		replication = flag.Int("replication", 0, "remote replication factor: place each partition on this many workers and fail over between them (0/1 = off)")
		timeout     = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		excludeSelf = flag.Bool("exclude-self", false, "drop the query trajectory from results")
		layoutName  = flag.String("layout", "", "per-partition index layout: pointer|succinct|compressed (empty = pointer)")
		probeBudget = flag.Int("probe-budget", 0, "score-guided probing: scan this many best-scoring partitions first and prune the rest when an admissible bound proves they cannot contribute; results are identical (0 = full scatter)")
		bestEffort  = flag.Bool("best-effort", false, "with -probe-budget, skip the unproven tail instead of bound-checking it (answers may be incomplete)")
		sub         = flag.Bool("sub", false, "subtrajectory search: score each candidate by its best-matching contiguous segment and report the matched sample range")
		minSeg      = flag.Int("min-seg", 0, "with -sub, minimum segment length in samples")
		maxSeg      = flag.Int("max-seg", 0, "with -sub, maximum segment length in samples (0 = unbounded)")
		window      = flag.String("window", "", "time window \"from:to\" (unix-style int64s): match only trajectory samples inside the window; untimestamped trajectories never match")
	)
	flag.Parse()

	m, err := dist.ParseMeasure(*measureName)
	if err != nil {
		fail(err)
	}
	layout, err := repose.ParseLayout(*layoutName)
	if err != nil {
		fail(err)
	}
	ds, err := loadData(*data, *dsName, *scale)
	if err != nil {
		fail(err)
	}
	var query *geo.Trajectory
	for _, tr := range ds {
		if tr.ID == *qid {
			query = tr
			break
		}
	}
	if query == nil {
		fail(fmt.Errorf("query id %d not in dataset (%d trajectories)", *qid, len(ds)))
	}

	opts := repose.Options{
		Measure:    m,
		Delta:      *delta,
		Partitions: *partitions,
		Layout:     layout,
	}
	start := time.Now()
	var idx *repose.Index
	if *workers != "" {
		idx, err = repose.BuildRemote(ds, opts, strings.Split(*workers, ","), repose.WithReplication(*replication))
	} else {
		idx, err = repose.Build(ds, opts)
	}
	if err != nil {
		fail(err)
	}
	defer idx.Close()
	st := idx.Stats()
	fmt.Printf("built %s index (%v layout): %d trajectories, %d partitions, %.2f MB, %v\n",
		idx.Engine(), st.Layout, st.Trajectories, st.Partitions, float64(st.IndexBytes)/(1<<20), time.Since(start).Round(time.Millisecond))

	kk := *k
	if *excludeSelf {
		kk++
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	qopts := []repose.QueryOption{}
	if *probeBudget > 0 {
		qopts = append(qopts, repose.WithProbeBudget(*probeBudget))
	}
	if *bestEffort {
		qopts = append(qopts, repose.WithBestEffortProbes())
	}
	if *window != "" {
		from, to, err := parseWindow(*window)
		if err != nil {
			fail(err)
		}
		qopts = append(qopts, repose.WithTimeWindow(from, to))
	}
	if *sub && (*minSeg > 0 || *maxSeg > 0) {
		qopts = append(qopts, repose.WithSegmentLength(*minSeg, *maxSeg))
	}
	var report repose.QueryReport
	start = time.Now()
	search := idx.Search
	if *sub {
		search = idx.SearchSub
	}
	res, err := search(ctx, query, kk, append(qopts, repose.WithReport(&report))...)
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("top-%d by %v for trajectory %d (%d points) in %v (straggler ratio %.2f):\n",
		*k, m, query.ID, len(query.Points), elapsed.Round(time.Microsecond), report.Imbalance())
	if *probeBudget > 0 {
		fmt.Printf("probe budget %d: probed %d, pruned %d, skipped %d partitions\n",
			*probeBudget, len(report.ProbedPartitions), len(report.PrunedPartitions), len(report.SkippedPartitions))
	}
	shown := 0
	for _, r := range res {
		if *excludeSelf && r.ID == query.ID {
			continue
		}
		shown++
		if *sub {
			fmt.Printf("%3d. trajectory %-8d distance %.6f  samples [%d, %d)\n", shown, r.ID, r.Dist, r.Start, r.End)
		} else {
			fmt.Printf("%3d. trajectory %-8d distance %.6f\n", shown, r.ID, r.Dist)
		}
		if shown == *k {
			break
		}
	}
}

// parseWindow splits a "from:to" time window into its endpoints.
func parseWindow(s string) (from, to int64, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-window wants \"from:to\", got %q", s)
	}
	if from, err = strconv.ParseInt(strings.TrimSpace(a), 10, 64); err != nil {
		return 0, 0, fmt.Errorf("-window from: %v", err)
	}
	if to, err = strconv.ParseInt(strings.TrimSpace(b), 10, 64); err != nil {
		return 0, 0, fmt.Errorf("-window to: %v", err)
	}
	return from, to, nil
}

func loadData(path, name string, scale float64) ([]*geo.Trajectory, error) {
	switch {
	case path != "":
		return dataset.Load(path)
	case name != "":
		spec, err := dataset.ByName(name, scale)
		if err != nil {
			return nil, err
		}
		return dataset.Generate(spec), nil
	default:
		return nil, fmt.Errorf("one of -data or -dataset is required")
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "repose-query: %v\n", err)
	os.Exit(1)
}
