package repose

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repose/internal/cluster/chaos"
	"repose/internal/leakcheck"
)

// startTestWorkers spins up n in-process TCP workers whose lifetime
// is bound to the test.
func startTestWorkers(t *testing.T, n int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	ready := make(chan string, n)
	for i := 0; i < n; i++ {
		go ServeWorkerContext(ctx, "127.0.0.1:0", func(addr string) { ready <- addr })
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = <-ready
	}
	return addrs
}

// TestLocalRemoteParity is the acceptance test for the unified API:
// Search, SearchRadius, and SearchBatch produce identical results on
// the in-process and TCP-remote backends for the same seed/dataset,
// options included.
func TestLocalRemoteParity(t *testing.T) {
	ds := testData(t, 250)
	opts := Options{Partitions: 6, Seed: 9}
	local, err := Build(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := BuildRemote(ds, opts, startTestWorkers(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if local.Engine().String() != "local" || remote.Engine().String() != "remote" {
		t.Fatalf("engines = %v, %v", local.Engine(), remote.Engine())
	}
	if l, r := local.Stats(), remote.Stats(); l.Trajectories != r.Trajectories || l.Partitions != r.Partitions || l.IndexBytes != r.IndexBytes {
		t.Fatalf("stats diverge: local %+v remote %+v", l, r)
	}

	ctx := context.Background()
	assertSame := func(what string, a, b []Result, err1, err2 error) {
		t.Helper()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errs %v, %v", what, err1, err2)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: len %d vs %d", what, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s rank %d: %+v vs %+v", what, i, a[i], b[i])
			}
		}
	}

	for _, qi := range []int{7, 42, 133} {
		q := ds[qi]
		lres, lerr := local.Search(ctx, q, 10)
		rres, rerr := remote.Search(ctx, q, 10)
		assertSame("search", lres, rres, lerr, rerr)

		lres, lerr = local.Search(ctx, q, 10, WithoutPivots())
		rres, rerr = remote.Search(ctx, q, 10, WithoutPivots())
		assertSame("search-no-pivots", lres, rres, lerr, rerr)

		lres, lerr = local.Search(ctx, q, 10, WithPartitions(1, 4))
		rres, rerr = remote.Search(ctx, q, 10, WithPartitions(1, 4))
		assertSame("search-subset", lres, rres, lerr, rerr)

		lres, lerr = local.SearchRadius(ctx, q, 0.5)
		rres, rerr = remote.SearchRadius(ctx, q, 0.5)
		assertSame("radius", lres, rres, lerr, rerr)
	}

	var lrep, rrep BatchReport
	lbatch, lerr := local.SearchBatch(ctx, ds[:9], 5, WithBatchReport(&lrep))
	rbatch, rerr := remote.SearchBatch(ctx, ds[:9], 5, WithBatchReport(&rrep))
	if lerr != nil || rerr != nil {
		t.Fatalf("batch errs: %v, %v", lerr, rerr)
	}
	if len(lbatch) != 9 || len(rbatch) != 9 {
		t.Fatalf("batch lens %d, %d", len(lbatch), len(rbatch))
	}
	for qi := range lbatch {
		assertSame("batch", lbatch[qi], rbatch[qi], nil, nil)
	}
	if lrep.Makespan <= 0 || rrep.Makespan <= 0 {
		t.Errorf("batch reports: %+v, %+v", lrep, rrep)
	}

	// Remote succinct indexes surface the same typed radius error as
	// local ones.
	sucOpts := Options{Partitions: 4, Succinct: true}
	sucRemote, err := BuildRemote(ds, sucOpts, startTestWorkers(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer sucRemote.Close()
	if _, err := sucRemote.SearchRadius(ctx, ds[0], 1); !errors.Is(err, ErrSuccinctUnsupported) {
		t.Errorf("remote succinct radius: %v", err)
	}
}

// TestCancellationBothBackends: a context whose deadline has passed
// stops a running query on both backends with
// context.DeadlineExceeded, without leaking goroutines.
func TestCancellationBothBackends(t *testing.T) {
	ds := testData(t, 400)
	opts := Options{Partitions: 6}
	local, err := Build(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := BuildRemote(ds, opts, startTestWorkers(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	ctx := context.Background()
	// Warm both engines so the goroutine baseline is steady state.
	if _, err := local.Search(ctx, ds[0], 5); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Search(ctx, ds[0], 5); err != nil {
		t.Fatal(err)
	}
	base := leakcheck.Base()

	for _, idx := range []*Index{local, remote} {
		name := idx.Engine().String()
		expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Millisecond))
		if _, err := idx.Search(expired, ds[1], 5); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s search: err = %v", name, err)
		}
		if _, err := idx.SearchRadius(expired, ds[1], 0.5); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s radius: err = %v", name, err)
		}
		if _, err := idx.SearchBatch(expired, ds[:4], 5); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s batch: err = %v", name, err)
		}
		cancel()
		// The engine still answers after cancellations.
		if _, err := idx.Search(ctx, ds[1], 5); err != nil {
			t.Errorf("%s post-cancel search: %v", name, err)
		}
	}

	// All query goroutines must drain; leakcheck paces itself on the
	// test's own deadline instead of a fixed sleep budget, so a loaded
	// -race CI machine cannot flake this.
	leakcheck.Settle(t, base)
}

// TestServeWorkerContextShutdown: cancelling the context closes the
// listener and unblocks the serve loop — the clean SIGINT path of
// cmd/repose-worker.
func TestServeWorkerContextShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	ready := make(chan string, 1)
	go func() {
		errc <- ServeWorkerContext(ctx, "127.0.0.1:0", func(addr string) { ready <- addr })
	}()
	addr := <-ready
	// The worker is live: a TCP dial succeeds.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("serve returned %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("ServeWorkerContext did not return after cancel")
	}
	// The listener is gone.
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
		t.Error("listener still accepting after shutdown")
	}
}

// TestReplicatedFacadeFailover: the public API's fault-tolerance
// surface. A replicated remote index keeps answering — including
// reads of its own writes — while a worker is dead behind a chaos
// proxy, identically to a fault-free local index, and Health exposes
// the recovery.
func TestReplicatedFacadeFailover(t *testing.T) {
	ds := testData(t, 300)
	opts := Options{Partitions: 6, Seed: 4}
	local, err := Build(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := chaos.NewFleet(startTestWorkers(t, 3), chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	remote, err := BuildRemote(ds, opts, fleet.Addrs(),
		WithReplication(2),
		WithFailover(FailoverConfig{
			FailThreshold: 1,
			ProbeInterval: 25 * time.Millisecond,
			CallTimeout:   500 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	ctx := context.Background()

	// Mutate through the facade, then kill a worker: the surviving
	// replicas must still satisfy the index's read-your-writes pins.
	fresh := &Trajectory{ID: 999_001, Points: []Point{{X: 0.5, Y: 0.5}, {X: 0.6, Y: 0.6}}}
	if err := local.Insert(ctx, []*Trajectory{fresh}); err != nil {
		t.Fatal(err)
	}
	if err := remote.Insert(ctx, []*Trajectory{fresh}); err != nil {
		t.Fatal(err)
	}
	p, err := fleet.At(1)
	if err != nil {
		t.Fatal(err)
	}
	p.Down()

	for _, q := range []*Trajectory{ds[3], fresh, ds[77]} {
		want, err := local.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := remote.Search(ctx, q, 10)
		if err != nil {
			t.Fatalf("replicated search with dead worker: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("len %d want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rank %d: %+v want %+v", i, got[i], want[i])
			}
		}
	}
	gotR, err := remote.SearchRadius(ctx, ds[3], 0.5)
	if err != nil {
		t.Fatalf("replicated radius with dead worker: %v", err)
	}
	wantR, err := local.SearchRadius(ctx, ds[3], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotR) != len(wantR) {
		t.Fatalf("radius len %d want %d", len(gotR), len(wantR))
	}

	// Health reflects the dead worker, and the cluster heals after it
	// returns.
	down := 0
	for _, h := range remote.Health() {
		if h.Down {
			down++
		}
	}
	if down == 0 {
		t.Fatal("Health reports no dead worker while one is down")
	}
	if lh := local.Health(); len(lh) != 1 || lh[0].Addr != "local" || lh[0].Down {
		t.Fatalf("local index Health() = %+v, want one healthy synthetic worker", lh)
	}
	p.Up()
	deadline := time.Now().Add(20 * time.Second)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		healthy := true
		for _, h := range remote.Health() {
			if h.Down || h.StaleParts > 0 {
				healthy = false
			}
		}
		if healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not heal: %+v", remote.Health())
		}
		<-tick.C
	}

	// Replication factor above the fleet size fails loudly.
	if _, err := BuildRemote(ds, opts, fleet.Addrs(), WithReplication(9)); err == nil {
		t.Fatal("over-replication should fail the build")
	}
}
